"""Unit tests for the PPR result cache store."""

import threading

import pytest

from repro.cache import (
    TOPK,
    VECTOR,
    AdmitOnSecondHit,
    PPRCache,
    TTLPolicy,
    beta_signature,
    make_key,
    pi_from_topk,
)
from repro.cache.store import EVICTION_SAMPLE
from repro.obs import MetricsRegistry


def key(source, algo="fora", beta=None, kind=VECTOR):
    return make_key(source, algo, beta or {}, kind)


class TestKeys:
    def test_beta_signature_order_independent(self):
        a = beta_signature({"rmax": 0.1, "walks": 100.0})
        b = beta_signature({"walks": 100, "rmax": 0.1})
        assert a == b

    def test_distinct_beta_distinct_key(self):
        assert key(1, beta={"rmax": 0.1}) != key(1, beta={"rmax": 0.2})

    def test_distinct_kind_distinct_key(self):
        assert key(1, kind=VECTOR) != key(1, kind=TOPK)

    def test_key_is_hashable_and_frozen(self):
        k = key(1)
        assert isinstance(hash(k), int)
        with pytest.raises(AttributeError):
            k.source = 2


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = PPRCache(capacity=4, epsilon_c=1.0, metrics=MetricsRegistry())
        assert cache.lookup(key(1)) is None
        assert cache.insert(key(1), "result", version=7)
        entry = cache.lookup(key(1))
        assert entry is not None
        assert entry.value == "result"
        assert entry.version == 7

    def test_hit_rate_counts_lookups(self):
        cache = PPRCache(capacity=4, epsilon_c=1.0, metrics=MetricsRegistry())
        cache.lookup(key(1))
        cache.insert(key(1), "r", version=0)
        cache.lookup(key(1))
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_reinsert_keeps_hits_resets_staleness(self):
        cache = PPRCache(capacity=4, epsilon_c=1.0, metrics=MetricsRegistry())
        cache.insert(key(1), "old", version=0)
        cache.lookup(key(1))
        cache.charge_staleness(lambda entry: 0.5)
        assert cache.insert(key(1), "new", version=3)
        entry = cache.lookup(key(1))
        assert entry.value == "new"
        assert entry.staleness == 0.0
        assert entry.version == 3
        assert entry.hits == 2  # 1 before re-insert + this lookup

    def test_metrics_counters_flow(self):
        metrics = MetricsRegistry()
        cache = PPRCache(capacity=4, epsilon_c=1.0, metrics=metrics)
        cache.lookup(key(1))
        cache.insert(key(1), "r", version=0)
        cache.lookup(key(1))
        assert metrics.counter("cache.misses").value == 1
        assert metrics.counter("cache.hits").value == 1
        assert metrics.counter("cache.insertions").value == 1
        assert metrics.gauge("cache.size").value == 1.0
        assert metrics.gauge("cache.hit_rate").value == pytest.approx(0.5)


class TestCapacityEviction:
    def test_capacity_is_respected(self):
        metrics = MetricsRegistry()
        cache = PPRCache(capacity=3, epsilon_c=1.0, metrics=metrics)
        for s in range(5):
            cache.insert(key(s), s, version=0)
        assert len(cache) == 3
        assert metrics.counter("cache.evictions_capacity").value == 2

    def test_hybrid_prefers_evicting_cold_entries(self):
        """Within the LRU-front sample, the least-hit entry goes first."""
        cache = PPRCache(
            capacity=EVICTION_SAMPLE,
            epsilon_c=1.0,
            metrics=MetricsRegistry(),
        )
        for s in range(EVICTION_SAMPLE):
            cache.insert(key(s), s, version=0)
        # make source 0 (the LRU-front entry) hot
        for _ in range(3):
            cache.lookup(key(0))
        cache.insert(key(99), 99, version=0)
        assert cache.lookup(key(0)) is not None  # hot survives
        assert cache.lookup(key(1)) is None  # cold LRU-front victim

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PPRCache(capacity=0)
        with pytest.raises(ValueError):
            PPRCache(epsilon_c=0.0)
        with pytest.raises(ValueError):
            PPRCache(epsilon_c=float("nan"))


class TestStalenessCharging:
    def test_entries_evicted_past_budget(self):
        metrics = MetricsRegistry()
        cache = PPRCache(capacity=4, epsilon_c=0.1, metrics=metrics)
        cache.insert(key(1), "r", version=0)
        assert cache.charge_staleness(lambda e: 0.06) == []
        evicted = cache.charge_staleness(lambda e: 0.06)
        assert evicted == [key(1)]
        assert cache.lookup(key(1)) is None
        assert metrics.counter("cache.evictions_staleness").value == 1

    def test_updates_seen_advances(self):
        cache = PPRCache(capacity=4, epsilon_c=1.0, metrics=MetricsRegistry())
        assert cache.updates_seen == 0
        cache.charge_staleness(lambda e: 0.0)
        cache.charge_staleness(lambda e: 0.0)
        assert cache.updates_seen == 2

    def test_per_entry_increment(self):
        cache = PPRCache(capacity=4, epsilon_c=1.0, metrics=MetricsRegistry())
        cache.insert(key(1), "a", version=0)
        cache.insert(key(2), "b", version=0)
        cache.charge_staleness(
            lambda entry: 0.2 if entry.key.source == 1 else 0.01
        )
        assert cache.lookup(key(1)).staleness == pytest.approx(0.2)
        assert cache.lookup(key(2)).staleness == pytest.approx(0.01)

    def test_invalidate_all(self):
        metrics = MetricsRegistry()
        cache = PPRCache(capacity=4, epsilon_c=1.0, metrics=metrics)
        cache.insert(key(1), "a", version=0)
        cache.insert(key(2), "b", version=0)
        assert cache.invalidate_all() == 2
        assert len(cache) == 0
        assert metrics.counter("cache.invalidations").value == 2


class TestPolicies:
    def test_admit_on_second_hit_rejects_first_attempt(self):
        metrics = MetricsRegistry()
        cache = PPRCache(
            capacity=4,
            epsilon_c=1.0,
            policy=AdmitOnSecondHit(),
            metrics=metrics,
        )
        assert not cache.insert(key(1), "r", version=0)
        assert metrics.counter("cache.rejections").value == 1
        assert cache.insert(key(1), "r", version=0)

    def test_admit_on_second_hit_cost_bypass(self):
        policy = AdmitOnSecondHit(cost_threshold_s=0.5)
        cache = PPRCache(
            capacity=4, epsilon_c=1.0, policy=policy, metrics=MetricsRegistry()
        )
        assert cache.insert(key(1), "r", version=0, cost_s=0.6)

    def test_admit_on_second_hit_seen_set_bounded(self):
        policy = AdmitOnSecondHit(seen_capacity=2)
        assert not policy.should_admit(key(1), 0.0)
        assert not policy.should_admit(key(2), 0.0)
        assert not policy.should_admit(key(3), 0.0)  # evicts key(1)
        assert not policy.should_admit(key(1), 0.0)  # forgotten: first again

    def test_ttl_expires_lazily_on_lookup(self):
        metrics = MetricsRegistry()
        cache = PPRCache(
            capacity=4,
            epsilon_c=10.0,
            policy=TTLPolicy(ttl_updates=2),
            metrics=metrics,
        )
        cache.insert(key(1), "r", version=0)
        for _ in range(3):
            cache.charge_staleness(lambda e: 0.0)
        assert cache.lookup(key(1)) is None
        assert metrics.counter("cache.evictions_ttl").value == 1

    def test_ttl_within_budget_survives(self):
        cache = PPRCache(
            capacity=4,
            epsilon_c=10.0,
            policy=TTLPolicy(ttl_updates=5),
            metrics=MetricsRegistry(),
        )
        cache.insert(key(1), "r", version=0)
        for _ in range(3):
            cache.charge_staleness(lambda e: 0.0)
        assert cache.lookup(key(1)) is not None


class TestPiFromTopk:
    def test_known_nodes_exact(self):
        estimate = pi_from_topk([(3, 0.5), (7, 0.2)])
        assert estimate(3) == 0.5
        assert estimate(7) == 0.2

    def test_unknown_nodes_get_floor(self):
        estimate = pi_from_topk([(3, 0.5), (7, 0.2)])
        assert estimate(42) == 0.2

    def test_empty_topk_conservative(self):
        assert pi_from_topk([])(0) == 1.0


class TestThreadSafety:
    def test_concurrent_insert_lookup_charge(self):
        """Hammer the store from reader/writer threads; invariants hold."""
        cache = PPRCache(capacity=32, epsilon_c=0.5, metrics=MetricsRegistry())
        errors = []

        def reader(offset):
            try:
                for i in range(300):
                    s = (i + offset) % 64
                    cache.insert(key(s), s, version=0)
                    cache.lookup(key(s))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for _ in range(300):
                    cache.charge_staleness(lambda e: 0.01)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(k,)) for k in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats["updates_seen"] == 300.0
