"""``PPRCache.worst_staleness`` — the staleness-budget oracle's probe."""

import pytest

from repro.cache.store import PPRCache, make_key
from repro.obs import MetricsRegistry


def make_cache(epsilon_c=0.3):
    return PPRCache(epsilon_c=epsilon_c, metrics=MetricsRegistry())


class TestWorstStaleness:
    def test_empty_cache_reports_zero(self):
        assert make_cache().worst_staleness() == 0.0

    def test_fresh_entries_report_zero(self):
        cache = make_cache()
        cache.insert(make_key(1, "a", {}), None, version=0)
        assert cache.worst_staleness() == 0.0

    def test_tracks_the_maximum_across_entries(self):
        cache = make_cache()
        cache.insert(make_key(1, "a", {}), None, version=0)
        cache.insert(make_key(2, "a", {}), None, version=0)
        charges = {1: 0.05, 2: 0.12}
        cache.charge_staleness(lambda entry: charges[entry.key.source])
        assert cache.worst_staleness() == pytest.approx(0.12)

    def test_never_exceeds_budget_after_charging(self):
        """The invariant the scenario fuzzer asserts: charging evicts
        past epsilon_c, so live entries stay within it."""
        cache = make_cache(epsilon_c=0.3)
        for source in range(6):
            cache.insert(make_key(source, "a", {}), None, version=0)
        for _ in range(10):
            cache.charge_staleness(lambda entry: 0.08)
            assert cache.worst_staleness() <= cache.epsilon_c

    def test_eviction_removes_over_budget_entry_from_view(self):
        cache = make_cache(epsilon_c=0.1)
        cache.insert(make_key(7, "a", {}), None, version=0)
        evicted = cache.charge_staleness(lambda entry: 0.2)
        assert [k.source for k in evicted] == [7]
        assert cache.worst_staleness() == 0.0
