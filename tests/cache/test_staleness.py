"""Unit tests for update-driven staleness charging."""

import math

import pytest

from repro.cache import (
    ChargingApplier,
    PPRCache,
    ReplayCache,
    StalenessTracker,
    lemma2_increment,
    make_key,
)
from repro.graph import DynamicGraph, EdgeUpdate
from repro.obs import MetricsRegistry


def line_graph(n=6):
    graph = DynamicGraph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def fresh_cache(epsilon_c=1.0, **kwargs):
    return PPRCache(epsilon_c=epsilon_c, metrics=MetricsRegistry(), **kwargs)


class TestLemma2Increment:
    def test_shape(self):
        assert lemma2_increment(0.2, 1.0, 4) == pytest.approx(0.8 / 4)

    def test_zero_degree_clamped(self):
        assert lemma2_increment(0.2, 1.0, 0) == pytest.approx(0.8)

    def test_scales_with_pi(self):
        assert lemma2_increment(0.2, 0.5, 4) == pytest.approx(0.1)


class TestStalenessTracker:
    def test_default_safety_is_coupling_factor(self):
        tracker = StalenessTracker(fresh_cache(), line_graph(), alpha=0.2)
        assert tracker.safety == pytest.approx(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StalenessTracker(fresh_cache(), line_graph(), alpha=0.0)
        with pytest.raises(ValueError):
            StalenessTracker(fresh_cache(), line_graph(), alpha=1.0)
        with pytest.raises(ValueError):
            StalenessTracker(
                fresh_cache(), line_graph(), alpha=0.2, safety=0.0
            )

    def test_degree_only_bound_without_estimate(self):
        graph = line_graph()
        cache = fresh_cache(epsilon_c=100.0)
        tracker = StalenessTracker(cache, graph, alpha=0.2, safety=1.0)
        key = make_key(0, "t", {})
        cache.insert(key, None, graph.version)
        update = EdgeUpdate(1, 5).apply(graph)
        tracker.observe(update)
        d = graph.out_degree(1)
        expected = lemma2_increment(0.2, 1.0, d)
        assert cache.lookup(key).staleness == pytest.approx(expected)

    def test_pi_estimate_scales_charge(self):
        graph = line_graph()
        cache = fresh_cache(epsilon_c=100.0)
        tracker = StalenessTracker(cache, graph, alpha=0.2, safety=1.0)
        key = make_key(0, "t", {})
        cache.insert(key, None, graph.version, pi_estimate=lambda node: 0.25)
        update = EdgeUpdate(1, 5).apply(graph)
        tracker.observe(update)
        d = graph.out_degree(1)
        expected = 0.25 * lemma2_increment(0.2, 1.0, d)
        assert cache.lookup(key).staleness == pytest.approx(expected)

    @pytest.mark.parametrize("bad", [float("nan"), -0.5])
    def test_bad_pi_estimate_falls_back_to_bound(self, bad):
        graph = line_graph()
        cache = fresh_cache(epsilon_c=100.0)
        tracker = StalenessTracker(cache, graph, alpha=0.2, safety=1.0)
        key = make_key(0, "t", {})
        cache.insert(key, None, graph.version, pi_estimate=lambda node: bad)
        update = EdgeUpdate(1, 5).apply(graph)
        tracker.observe(update)
        expected = lemma2_increment(0.2, 1.0, graph.out_degree(1))
        staleness = cache.lookup(key).staleness
        assert math.isfinite(staleness)
        assert staleness == pytest.approx(expected)

    def test_eviction_past_budget_reported(self):
        graph = line_graph()
        cache = fresh_cache(epsilon_c=0.3)
        tracker = StalenessTracker(cache, graph, alpha=0.2, safety=1.0)
        key = make_key(0, "t", {})
        cache.insert(key, None, graph.version)
        evicted = []
        # node 0 has out-degree 1: charge 0.8 per toggle at safety 1
        for i in range(3):
            update = EdgeUpdate(0, 3 + i).apply(graph)
            evicted.extend(tracker.observe(update))
        assert key in evicted
        assert cache.lookup(key) is None


class TestChargingApplier:
    def test_applies_then_charges_post_update_degrees(self):
        graph = line_graph()
        cache = fresh_cache(epsilon_c=100.0)
        tracker = StalenessTracker(cache, graph, alpha=0.2, safety=1.0)
        key = make_key(0, "t", {})
        cache.insert(key, None, graph.version)

        class GraphApplier:
            def apply_update(self, update):
                return update.apply(graph)

        applier = ChargingApplier(GraphApplier(), tracker)
        resolved = applier.apply_update(EdgeUpdate(1, 5))
        assert resolved.kind == "insert"  # edge (1, 5) did not exist
        assert graph.has_edge(1, 5)
        # charged against the POST-update degree (2), not the prior (1)
        expected = lemma2_increment(0.2, 1.0, 2)
        assert cache.lookup(key).staleness == pytest.approx(expected)
        assert cache.updates_seen == 1


class TestReplayCache:
    def test_hit_after_admit(self):
        graph = line_graph()
        replay = ReplayCache(fresh_cache(epsilon_c=100.0), graph)
        assert not replay.hit(3)
        assert replay.admit(3, cost_s=0.01)
        assert replay.hit(3)

    def test_on_update_charges_conservatively(self):
        graph = line_graph()
        cache = fresh_cache(epsilon_c=100.0)
        replay = ReplayCache(cache, graph, alpha=0.2, safety=1.0)
        replay.admit(3)
        replay.on_update(EdgeUpdate(1, 5).apply(graph))
        entry = cache.lookup(replay._key(3))
        # no vector stored -> degree-only bound with pi_hat = 1
        expected = lemma2_increment(0.2, 1.0, graph.out_degree(1))
        assert entry.staleness == pytest.approx(expected)

    def test_pi_estimate_passthrough(self):
        graph = line_graph()
        cache = fresh_cache(epsilon_c=100.0)
        replay = ReplayCache(cache, graph, alpha=0.2, safety=1.0)
        replay.admit(3, pi_estimate=lambda node: 0.1)
        replay.on_update(EdgeUpdate(1, 5).apply(graph))
        entry = cache.lookup(replay._key(3))
        expected = 0.1 * lemma2_increment(0.2, 1.0, graph.out_degree(1))
        assert entry.staleness == pytest.approx(expected)

    def test_negative_hit_service_rejected(self):
        with pytest.raises(ValueError):
            ReplayCache(fresh_cache(), line_graph(), hit_service_s=-1.0)
