"""Tests for the edge-arrival update model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph, EdgeUpdate, UpdateStream, random_update_stream


class TestEdgeUpdate:
    def test_toggle_resolves_to_insert(self):
        g = DynamicGraph(num_nodes=2)
        resolved = EdgeUpdate(0, 1).apply(g)
        assert resolved.kind == "insert"
        assert g.has_edge(0, 1)

    def test_toggle_resolves_to_delete(self):
        g = DynamicGraph.from_edges([(0, 1)])
        resolved = EdgeUpdate(0, 1).apply(g)
        assert resolved.kind == "delete"
        assert not g.has_edge(0, 1)

    def test_explicit_insert(self):
        g = DynamicGraph(num_nodes=2)
        EdgeUpdate(0, 1, "insert").apply(g)
        assert g.has_edge(0, 1)

    def test_explicit_insert_duplicate_raises(self):
        g = DynamicGraph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            EdgeUpdate(0, 1, "insert").apply(g)

    def test_explicit_delete_missing_raises(self):
        with pytest.raises(KeyError):
            EdgeUpdate(0, 1, "delete").apply(DynamicGraph(num_nodes=2))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            EdgeUpdate(0, 1, "replace").apply(DynamicGraph(num_nodes=2))

    def test_frozen(self):
        update = EdgeUpdate(0, 1)
        with pytest.raises(AttributeError):
            update.u = 5


class TestUpdateStream:
    def test_apply_next_in_order(self):
        g = DynamicGraph(num_nodes=3)
        stream = UpdateStream([EdgeUpdate(0, 1), EdgeUpdate(1, 2)])
        first = stream.apply_next(g)
        assert (first.u, first.v) == (0, 1)
        assert stream.remaining == 1
        stream.apply_next(g)
        assert stream.apply_next(g) is None

    def test_apply_all(self):
        g = DynamicGraph(num_nodes=4)
        stream = UpdateStream([EdgeUpdate(0, 1), EdgeUpdate(0, 1), EdgeUpdate(2, 3)])
        resolved = stream.apply_all(g)
        assert [r.kind for r in resolved] == ["insert", "delete", "insert"]
        assert g.num_edges == 1

    def test_reset(self):
        stream = UpdateStream([EdgeUpdate(0, 1)])
        g = DynamicGraph(num_nodes=2)
        stream.apply_all(g)
        stream.reset()
        assert stream.remaining == 1

    def test_len_and_indexing(self):
        stream = UpdateStream([EdgeUpdate(0, 1), EdgeUpdate(2, 3)])
        assert len(stream) == 2
        assert stream[1].u == 2


class TestRandomUpdateStream:
    def test_endpoints_from_initial_nodes(self):
        g = DynamicGraph(num_nodes=10)
        stream = random_update_stream(g, 50, rng=random.Random(0))
        assert len(stream) == 50
        assert all(0 <= u.u < 10 and 0 <= u.v < 10 for u in stream)
        assert all(u.u != u.v for u in stream)

    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            random_update_stream(DynamicGraph(num_nodes=1), 5)

    def test_deterministic_with_seeded_rng(self):
        g = DynamicGraph(num_nodes=8)
        a = random_update_stream(g, 20, rng=random.Random(3))
        b = random_update_stream(g, 20, rng=random.Random(3))
        assert [(u.u, u.v) for u in a] == [(u.u, u.v) for u in b]


@settings(max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
def test_stream_replay_reaches_same_graph(pairs):
    """Replaying the same toggles on an identical graph gives equal graphs."""
    updates = [EdgeUpdate(u, v) for u, v in pairs]
    g1 = DynamicGraph(num_nodes=10)
    g2 = DynamicGraph(num_nodes=10)
    UpdateStream(updates).apply_all(g1)
    UpdateStream(updates).apply_all(g2)
    assert set(g1.edges()) == set(g2.edges())
