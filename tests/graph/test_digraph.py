"""Unit and property tests for DynamicGraph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph


class TestConstruction:
    def test_empty(self):
        g = DynamicGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_preallocated_nodes(self):
        g = DynamicGraph(num_nodes=5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert list(g.nodes()) == [0, 1, 2, 3, 4]

    def test_from_edges_directed(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_from_edges_undirected(self):
        g = DynamicGraph.from_edges([(0, 1)], directed=False)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.num_edges == 2

    def test_copy_is_independent(self):
        g = DynamicGraph.from_edges([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_nodes == 2
        assert h.num_nodes == 3

    def test_copy_equal(self):
        g = DynamicGraph.from_edges([(0, 1), (2, 3)])
        assert g.copy() == g


class TestNodes:
    def test_add_node_idempotent(self):
        g = DynamicGraph()
        assert g.add_node(7)
        assert not g.add_node(7)
        assert g.num_nodes == 1

    def test_remove_node_strips_incident_edges(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        g.remove_node(1)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge(2, 0)

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            DynamicGraph().remove_node(0)

    def test_contains(self):
        g = DynamicGraph.from_edges([(0, 1)])
        assert 0 in g
        assert 5 not in g
        assert (0, 1) in g
        assert (1, 0) not in g
        assert "x" not in g


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        g = DynamicGraph()
        g.add_edge(3, 9)
        assert g.has_node(3)
        assert g.has_node(9)

    def test_duplicate_add_returns_false(self):
        g = DynamicGraph()
        assert g.add_edge(0, 1)
        assert not g.add_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        with pytest.raises(KeyError):
            DynamicGraph().remove_edge(0, 1)

    def test_self_loop(self):
        g = DynamicGraph()
        g.add_edge(0, 0)
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 1

    def test_toggle_semantics(self):
        g = DynamicGraph()
        assert g.toggle_edge(0, 1) is True
        assert g.has_edge(0, 1)
        assert g.toggle_edge(0, 1) is False
        assert not g.has_edge(0, 1)
        # endpoints survive deletion
        assert g.has_node(0) and g.has_node(1)

    def test_degrees_track_edges(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        g.remove_edge(0, 2)
        assert g.out_degree(0) == 1
        assert g.in_degree(2) == 1

    def test_average_degree(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
        assert g.average_degree() == pytest.approx(4 / 3)
        assert DynamicGraph().average_degree() == 0.0

    def test_neighbors_consistent_with_edges(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (3, 0)])
        assert sorted(g.out_neighbors(0)) == [1, 2]
        assert g.in_neighbors(0) == [3]


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
edge_strategy = st.tuples(st.integers(0, 15), st.integers(0, 15))


@settings(max_examples=80)
@given(st.lists(edge_strategy, max_size=60))
def test_out_in_adjacency_mirror(edge_ops):
    """After arbitrary toggles: out/in lists mirror the edge set exactly."""
    g = DynamicGraph()
    for u, v in edge_ops:
        g.toggle_edge(u, v)
    out_pairs = {(u, v) for u in g.nodes() for v in g.out_neighbors(u)}
    in_pairs = {(u, v) for v in g.nodes() for u in g.in_neighbors(v)}
    assert out_pairs == set(g.edges())
    assert in_pairs == set(g.edges())
    assert g.num_edges == len(out_pairs)


@settings(max_examples=80)
@given(st.lists(edge_strategy, max_size=60))
def test_degree_sums_equal_edge_count(edge_ops):
    g = DynamicGraph()
    for u, v in edge_ops:
        g.toggle_edge(u, v)
    assert sum(g.out_degree(v) for v in g.nodes()) == g.num_edges
    assert sum(g.in_degree(v) for v in g.nodes()) == g.num_edges


@settings(max_examples=50)
@given(st.lists(edge_strategy, min_size=1, max_size=40))
def test_double_toggle_is_identity_on_edges(edge_ops):
    """Toggling the same sequence twice restores the original edge set."""
    g = DynamicGraph()
    for u, v in edge_ops:
        g.toggle_edge(u, v)
    before = set(g.edges())
    for u, v in edge_ops:
        g.toggle_edge(u, v)
    for u, v in edge_ops:
        g.toggle_edge(u, v)
    assert set(g.edges()) == before
