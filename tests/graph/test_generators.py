"""Tests for synthetic graph generators."""

import pytest

from repro.graph import (
    barabasi_albert_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    ring_graph,
    star_graph,
    watts_strogatz_graph,
)


class TestErdosRenyi:
    def test_gnm_exact_edge_count(self):
        g = erdos_renyi_graph(50, m=200, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 200

    def test_gnm_undirected_doubles_edges(self):
        g = erdos_renyi_graph(30, m=60, directed=False, seed=2)
        assert g.num_edges == 120
        for u, v in list(g.edges()):
            assert g.has_edge(v, u)

    def test_gnp_density(self):
        g = erdos_renyi_graph(40, p=0.5, seed=3)
        expected = 40 * 39 * 0.5
        assert 0.6 * expected < g.num_edges < 1.4 * expected

    def test_requires_exactly_one_of_p_m(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, p=0.1, m=5)

    def test_m_too_large_raises(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(3, m=100)

    def test_deterministic_given_seed(self):
        a = erdos_renyi_graph(25, m=80, seed=42)
        b = erdos_renyi_graph(25, m=80, seed=42)
        assert set(a.edges()) == set(b.edges())

    def test_no_self_loops(self):
        g = erdos_renyi_graph(20, m=100, seed=4)
        assert all(u != v for u, v in g.edges())


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert_graph(100, attach=3, seed=5)
        assert g.num_nodes == 100
        # every non-seed node emits at least `attach` edges
        assert g.num_edges >= 3 * (100 - 4)

    def test_degree_skew(self):
        """Preferential attachment should create hub nodes."""
        g = barabasi_albert_graph(300, attach=2, seed=6)
        degrees = sorted((g.in_degree(v) for v in g.nodes()), reverse=True)
        assert degrees[0] > 5 * (sum(degrees) / len(degrees))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, attach=5)
        with pytest.raises(ValueError):
            barabasi_albert_graph(10, attach=0)

    def test_deterministic_given_seed(self):
        a = barabasi_albert_graph(60, attach=2, seed=9)
        b = barabasi_albert_graph(60, attach=2, seed=9)
        assert set(a.edges()) == set(b.edges())


class TestWattsStrogatz:
    def test_every_node_connected(self):
        g = watts_strogatz_graph(50, k=4, rewire_p=0.2, seed=7)
        assert all(g.out_degree(v) >= 1 for v in g.nodes())

    def test_symmetric(self):
        g = watts_strogatz_graph(30, k=4, rewire_p=0.3, seed=8)
        for u, v in list(g.edges()):
            assert g.has_edge(v, u)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, k=3)
        with pytest.raises(ValueError):
            watts_strogatz_graph(4, k=4)


class TestDeterministicShapes:
    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 20
        assert all(g.out_degree(v) == 4 for v in g.nodes())

    def test_star(self):
        g = star_graph(6)
        assert g.out_degree(0) == 5
        assert all(g.out_degree(v) == 1 for v in range(1, 6))

    def test_ring_directed(self):
        g = ring_graph(4)
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_ring_undirected(self):
        g = ring_graph(4, directed=False)
        assert g.num_edges == 8

    def test_grid(self):
        g = grid_graph(3, 3)
        assert g.num_nodes == 9
        # 2 * (rows*(cols-1) + (rows-1)*cols) directed edges
        assert g.num_edges == 2 * (3 * 2 + 2 * 3)
        assert g.out_degree(4) == 4  # center node
