"""Additional DynamicGraph coverage: version counter, equality, repr."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph


class TestVersionCounter:
    def test_initial_version(self):
        assert DynamicGraph().version == 0

    def test_add_edge_bumps(self):
        g = DynamicGraph(num_nodes=2)
        before = g.version
        g.add_edge(0, 1)
        assert g.version > before

    def test_duplicate_add_does_not_bump(self):
        g = DynamicGraph.from_edges([(0, 1)])
        before = g.version
        g.add_edge(0, 1)  # already exists -> returns False
        assert g.version == before

    def test_remove_edge_bumps(self):
        g = DynamicGraph.from_edges([(0, 1)])
        before = g.version
        g.remove_edge(0, 1)
        assert g.version > before

    def test_add_node_bumps_only_when_new(self):
        g = DynamicGraph()
        v0 = g.version
        g.add_node(3)
        v1 = g.version
        g.add_node(3)
        assert v1 > v0
        assert g.version == v1

    def test_remove_node_bumps(self):
        g = DynamicGraph.from_edges([(0, 1)])
        before = g.version
        g.remove_node(1)
        assert g.version > before

    def test_copy_carries_version(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        assert g.copy().version == g.version

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=1, max_size=20))
    def test_every_toggle_bumps(self, pairs):
        g = DynamicGraph(num_nodes=6)
        last = g.version
        for u, v in pairs:
            g.toggle_edge(u, v)
            assert g.version > last
            last = g.version


class TestDunder:
    def test_repr_mentions_sizes(self):
        g = DynamicGraph.from_edges([(0, 1)])
        assert "n=2" in repr(g)
        assert "m=1" in repr(g)

    def test_equality_ignores_version(self):
        a = DynamicGraph.from_edges([(0, 1)])
        b = DynamicGraph(num_nodes=2)
        b.add_edge(0, 1)
        b.toggle_edge(0, 1)
        b.toggle_edge(0, 1)  # extra churn -> higher version
        assert a == b

    def test_equality_respects_isolated_nodes(self):
        a = DynamicGraph.from_edges([(0, 1)])
        b = DynamicGraph(num_nodes=3)
        b.add_edge(0, 1)
        assert a != b

    def test_equality_with_other_types(self):
        assert DynamicGraph() != 42
        assert DynamicGraph() != "graph"

    def test_len_is_node_count(self):
        assert len(DynamicGraph(num_nodes=7)) == 7

    def test_hash_is_identity_based(self):
        a = DynamicGraph.from_edges([(0, 1)])
        b = DynamicGraph.from_edges([(0, 1)])
        assert hash(a) != hash(b) or a is b
        assert hash(a) == hash(a)
