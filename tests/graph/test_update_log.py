"""Tests for the structural update log backing incremental CSR catch-up."""

from repro.graph import DynamicGraph
from repro.graph.digraph import (
    ADD_EDGE,
    ADD_NODE,
    MAX_UPDATE_LOG,
    REMOVE_EDGE,
    REMOVE_NODE,
    RESET,
)


class TestUpdatesSince:
    def test_no_updates_is_empty_list(self):
        g = DynamicGraph.from_edges([(0, 1)])
        assert g.updates_since(g.version) == []

    def test_replays_in_order(self):
        g = DynamicGraph()
        v0 = g.version
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.remove_edge(0, 1)
        entries = g.updates_since(v0)
        # node creations are interleaved with the edge ops
        assert [e for e in entries if e[0] in (ADD_EDGE, REMOVE_EDGE)] == [
            (ADD_EDGE, 0, 1),
            (ADD_EDGE, 1, 2),
            (REMOVE_EDGE, 0, 1),
        ]
        assert (ADD_NODE, 0, 0) in entries

    def test_node_removal_logged(self):
        g = DynamicGraph.from_edges([(0, 1)])
        v = g.version
        g.remove_node(1)
        assert (REMOVE_NODE, 1, 1) in g.updates_since(v)

    def test_version_ahead_of_log_returns_none(self):
        g = DynamicGraph.from_edges([(0, 1)])
        assert g.updates_since(g.version + 1) is None

    def test_copy_starts_fresh_window(self):
        g = DynamicGraph.from_edges([(0, 1)])
        h = g.copy()
        assert h.version > 0
        assert h.updates_since(0) is None
        assert h.updates_since(h.version) == []

    def test_no_ops_do_not_advance_version(self):
        g = DynamicGraph.from_edges([(0, 1)])
        v = g.version
        g.add_edge(0, 1)  # duplicate
        g.add_node(0)  # already present
        assert g.version == v
        assert g.updates_since(v) == []


class TestLogBounds:
    def test_log_trims_but_version_keeps_counting(self):
        g = DynamicGraph()
        for i in range(MAX_UPDATE_LOG + 10):
            g.toggle_edge(i % 7, (i + 1) % 7)
        assert len(g._log) <= MAX_UPDATE_LOG
        assert g.version == g._log_base + len(g._log)
        # recent history is still replayable
        recent = g.version - 5
        assert g.updates_since(recent) is not None
        assert len(g.updates_since(recent)) == 5

    def test_old_versions_fall_out_of_window(self):
        g = DynamicGraph()
        v0 = g.version
        for i in range(MAX_UPDATE_LOG + 10):
            g.toggle_edge(i % 7, (i + 1) % 7)
        assert g.updates_since(v0) is None


class TestSnapshotRestore:
    def test_restore_recovers_structure(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        snap = g.snapshot()
        g.add_edge(2, 0)
        g.remove_edge(0, 1)
        g.restore(snap)
        assert set(g.edges()) == {(0, 1), (1, 2)}
        assert g.num_nodes == 3

    def test_restore_version_is_monotone(self):
        """Regression: restore used to copy the snapshot's (smaller)
        version, so a later mutation could wrap back to a version a
        cached CSR view had already seen — serving stale adjacency."""
        g = DynamicGraph.from_edges([(0, 1)])
        snap = g.snapshot()
        g.add_edge(1, 2)
        v_mutated = g.version
        g.restore(snap)
        assert g.version > v_mutated
        assert g.version > snap.version

    def test_restore_logs_reset(self):
        g = DynamicGraph.from_edges([(0, 1)])
        snap = g.snapshot()
        g.add_edge(1, 2)
        v_before_restore = g.version
        g.restore(snap)
        # a consumer at the pre-restore version replays exactly the
        # RESET barrier, which forces it to rebuild
        assert g.updates_since(v_before_restore) == [(RESET, 0, 0)]
        # anything older is outside the retained window
        assert g.updates_since(v_before_restore - 1) is None

    def test_snapshot_is_independent(self):
        g = DynamicGraph.from_edges([(0, 1)])
        snap = g.snapshot()
        g.add_edge(1, 2)
        assert not snap.has_edge(1, 2)

    def test_restore_after_restore(self):
        g = DynamicGraph.from_edges([(0, 1)])
        snap = g.snapshot()
        g.restore(snap)
        v1 = g.version
        g.restore(snap)
        assert g.version > v1
        assert set(g.edges()) == {(0, 1)}


def test_version_log_invariant_under_random_ops():
    import random

    rng = random.Random(11)
    g = DynamicGraph(num_nodes=8)
    for _ in range(500):
        op = rng.random()
        if op < 0.8:
            g.toggle_edge(rng.randrange(8), rng.randrange(8))
        elif op < 0.9:
            g.add_node(rng.randrange(20))
        else:
            node = rng.choice(sorted(g.nodes()))
            g.remove_node(node)
            g.add_node(node)
        assert g.version == g._log_base + len(g._log)
