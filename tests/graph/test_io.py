"""Tests for edge-list I/O."""

import pytest

from repro.graph import DynamicGraph, load_edge_list, save_edge_list


def test_round_trip(tmp_path):
    g = DynamicGraph.from_edges([(0, 1), (1, 2), (5, 0)])
    path = tmp_path / "graph.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path)
    assert set(loaded.edges()) == set(g.edges())


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("# header\n\n0 1\n# mid comment\n1 2\n")
    g = load_edge_list(path)
    assert g.num_edges == 2


def test_undirected_load(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("0 1\n")
    g = load_edge_list(path, directed=False)
    assert g.has_edge(0, 1) and g.has_edge(1, 0)


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("0\n")
    with pytest.raises(ValueError, match="expected 'u v'"):
        load_edge_list(path)


def test_extra_columns_tolerated(tmp_path):
    """SNAP files sometimes carry weights/timestamps; we take cols 0-1."""
    path = tmp_path / "graph.txt"
    path.write_text("0 1 1234567\n")
    g = load_edge_list(path)
    assert g.has_edge(0, 1)


def test_header_written(tmp_path):
    g = DynamicGraph.from_edges([(0, 1)])
    path = tmp_path / "graph.txt"
    save_edge_list(g, path)
    assert path.read_text().startswith("# nodes: 2 edges: 1\n")
