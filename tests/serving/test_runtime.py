"""Tests for the concurrent serving runtime and its building blocks."""

import threading
import time

import pytest

from repro.core.system import QuotaSystem
from repro.graph import DynamicGraph, EdgeUpdate
from repro.obs import MetricsRegistry
from repro.ppr import Fora, PPRParams
from repro.queueing.workload import QUERY, UPDATE, Request
from repro.serving import (
    FAILED,
    OK,
    SHED,
    SHED_QUEUE_FULL,
    TIMEOUT,
    AdmissionQueue,
    RWLock,
    ServingRuntime,
    Ticket,
)


def make_graph():
    return DynamicGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (0, 2), (2, 3), (3, 0)]
    )


def make_algorithm(graph=None):
    return Fora(graph if graph is not None else make_graph(),
                PPRParams(walk_cap=100))


def make_runtime(algorithm=None, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("idle_tick_s", 0.005)
    return ServingRuntime(
        algorithm if algorithm is not None else make_algorithm(), **kwargs
    )


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        assert lock.acquire_read()
        assert lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = RWLock()
        lock.acquire_write()
        assert not lock.acquire_read(timeout=0.01)
        lock.release_write()
        assert lock.acquire_read()
        lock.release_read()

    def test_write_preference_blocks_new_readers(self):
        """Once a writer waits, later readers queue behind it."""
        lock = RWLock()
        lock.acquire_read()
        got_write = []

        def writer():
            got_write.append(lock.acquire_write(timeout=2.0))
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)  # writer is now waiting
        assert not lock.acquire_read(timeout=0.01)
        lock.release_read()  # writer proceeds
        thread.join()
        assert got_write == [True]

    def test_write_timeout(self):
        lock = RWLock()
        lock.acquire_read()
        assert not lock.acquire_write(timeout=0.01)
        lock.release_read()
        assert lock.acquire_write(timeout=0.01)
        lock.release_write()

    def test_contextmanagers(self):
        lock = RWLock()
        with lock.write_locked():
            pass
        with lock.read_locked():
            with lock.read_locked():
                pass
        # fully released afterwards
        assert lock.acquire_write(timeout=0.01)
        lock.release_write()


class TestAdmissionQueue:
    def test_sheds_when_full(self):
        metrics = MetricsRegistry()
        q = AdmissionQueue(capacity=2, metrics=metrics)
        t = Ticket(Request(0.0, QUERY, source=0), 0.0)
        assert q.offer(t) and q.offer(t)
        assert not q.offer(t)
        assert metrics.snapshot()["counters"]["serving.shed"] == 1
        assert q.depth == 2

    def test_depth_gauge_tracks(self):
        metrics = MetricsRegistry()
        q = AdmissionQueue(capacity=4, metrics=metrics)
        t = Ticket(Request(0.0, QUERY, source=0), 0.0)
        q.offer(t)
        q.offer(t)
        assert metrics.snapshot()["gauges"]["serving.queue_depth"][
            "high_water"
        ] == 2
        q.take(0.01)
        assert q.depth == 1

    def test_take_times_out(self):
        q = AdmissionQueue(capacity=1, metrics=MetricsRegistry())
        assert q.take(0.01) is None

    def test_ticket_expiry(self):
        t = Ticket(Request(0.0, QUERY, source=0), 0.0, deadline_s=1.0)
        assert not t.expired(now_s=0.5)
        assert t.expired(now_s=1.5)
        assert not Ticket(
            Request(0.0, QUERY, source=0), 0.0
        ).expired(now_s=1e9)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=-1, metrics=MetricsRegistry())


class TestServingRuntime:
    def test_serves_queries_and_updates(self):
        graph = make_graph()
        runtime = make_runtime(make_algorithm(graph), workers=2,
                               queue_capacity=0)
        requests = [
            Request(0.0, QUERY, source=0),
            Request(0.0, UPDATE, update=EdgeUpdate(0, 9)),
            Request(0.0, QUERY, source=2),
        ]
        with runtime:
            report = runtime.serve(requests)
        assert len(report.records) == 3
        assert all(r.status == OK for r in report.records)
        assert graph.has_edge(0, 9)
        assert len(report.completed_queries()) == 2
        assert report.query_throughput() > 0

    def test_requires_start(self):
        runtime = make_runtime()
        with pytest.raises(RuntimeError, match="not started"):
            runtime.submit(Request(0.0, QUERY, source=0))

    def test_double_start_rejected(self):
        runtime = make_runtime()
        runtime.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                runtime.start()
        finally:
            runtime.stop()

    def test_sheds_on_full_queue(self):
        runtime = make_runtime(workers=1, queue_capacity=1)
        with runtime:
            results = [
                runtime.submit(Request(0.0, QUERY, source=0))
                for _ in range(60)
            ]
            runtime.drain()
        assert not all(results)
        shed = [r for r in runtime.records if r.status == SHED]
        assert shed and all(r.shed_reason == SHED_QUEUE_FULL for r in shed)

    def test_deadline_timeout(self):
        metrics = MetricsRegistry()
        slow = lambda graph, source: time.sleep(0.05)  # noqa: E731
        runtime = make_runtime(
            workers=1, queue_capacity=0, deadline_s=0.01,
            query_fn=slow, metrics=metrics,
        )
        with runtime:
            for _ in range(8):
                runtime.submit(Request(0.0, QUERY, source=0))
            runtime.drain()
        statuses = {r.status for r in runtime.records}
        assert TIMEOUT in statuses
        assert metrics.snapshot()["counters"]["serving.timeout"] >= 1

    def test_seed_deferral_and_drain(self):
        """Updates defer through the Seed queue and are all applied by
        the time drain() returns."""
        graph = make_graph()
        runtime = make_runtime(
            make_algorithm(graph), workers=2, epsilon_r=100.0,
            queue_capacity=0,
        )
        with runtime:
            runtime.submit(Request(0.0, UPDATE, update=EdgeUpdate(0, 9)))
            runtime.submit(Request(0.0, UPDATE, update=EdgeUpdate(9, 5)))
            runtime.submit(Request(0.0, QUERY, source=0))
            runtime.drain()
        assert runtime.pending_updates == 0
        assert graph.has_edge(0, 9) and graph.has_edge(9, 5)
        applied = [
            r for r in runtime.records
            if r.kind == UPDATE and r.status == OK
        ]
        assert len(applied) == 2
        assert all(r.version > 0 for r in applied)

    def test_fault_degrades_to_fcfs(self):
        graph = make_graph()
        algorithm = make_algorithm(graph)
        original = algorithm.apply_update
        calls = []

        def flaky(update):
            calls.append(update)
            if len(calls) == 2:
                raise RuntimeError("injected")
            return original(update)

        algorithm.apply_update = flaky
        metrics = MetricsRegistry()
        runtime = make_runtime(
            algorithm, workers=2, epsilon_r=100.0, queue_capacity=0,
            metrics=metrics,
        )
        updates = [EdgeUpdate(0, 9), EdgeUpdate(9, 5), EdgeUpdate(5, 4)]
        with runtime:
            for update in updates:
                runtime.submit(Request(0.0, UPDATE, update=update))
            runtime.submit(Request(0.0, QUERY, source=0))
            runtime.drain()
        assert runtime.degraded
        failed = [r for r in runtime.records if r.status == FAILED]
        assert len(failed) == 1 and "injected" in failed[0].error
        assert metrics.snapshot()["counters"]["serving.faults"] == 1
        # the two surviving updates were applied despite the fault
        ok_updates = [
            r for r in runtime.records
            if r.kind == UPDATE and r.status == OK
        ]
        assert len(ok_updates) == 2
        assert runtime.pending_updates == 0

    def test_query_results_returned(self):
        seen = []
        runtime = make_runtime(
            workers=1, queue_capacity=0,
            query_fn=lambda graph, source: ("answer", source),
        )
        with runtime:
            runtime.submit(Request(0.0, QUERY, source=3))
            runtime.drain()
        seen = [r.result for r in runtime.records if r.status == OK]
        assert seen == [("answer", 3)]

    def test_stop_flushes_pending(self):
        graph = make_graph()
        runtime = make_runtime(
            make_algorithm(graph), workers=1, epsilon_r=100.0,
            queue_capacity=0, drain_idle=False,
        )
        runtime.start()
        runtime.submit(Request(0.0, UPDATE, update=EdgeUpdate(0, 9)))
        runtime.stop()  # flush=True default
        assert graph.has_edge(0, 9)
        assert runtime.pending_updates == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_runtime(workers=0)
        with pytest.raises(ValueError):
            make_runtime(deadline_s=0.0)

    def test_wait_and_response_histograms(self):
        metrics = MetricsRegistry()
        runtime = make_runtime(workers=1, queue_capacity=0, metrics=metrics)
        with runtime:
            runtime.serve([Request(0.0, QUERY, source=0)])
        hist = metrics.snapshot()["histograms"]
        assert hist["serving.wait"]["count"] == 1
        assert hist["serving.response"]["count"] == 1


class TestQuotaIntegration:
    def test_make_runtime_shares_config(self):
        graph = make_graph()
        system = QuotaSystem(make_algorithm(graph), epsilon_r=7.0)
        runtime = system.make_runtime(workers=3, queue_capacity=11)
        assert runtime.algorithm is system.algorithm
        assert runtime.epsilon_r == 7.0
        assert runtime.workers == 3
        assert runtime.metrics is system.metrics
        assert runtime.controller is None

    def test_make_runtime_serves(self):
        system = QuotaSystem(make_algorithm(), epsilon_r=5.0)
        runtime = system.make_runtime(workers=1, queue_capacity=0)
        with runtime:
            report = runtime.serve([
                Request(0.0, QUERY, source=0),
                Request(0.0, UPDATE, update=EdgeUpdate(0, 9)),
            ])
        assert all(r.status == OK for r in report.records)

    def test_reconfigure_without_controller_is_noop(self):
        runtime = make_runtime()
        with runtime:
            assert runtime.reconfigure(1.0, 1.0) is None
