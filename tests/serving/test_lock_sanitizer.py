"""Tests for the runtime lock-order sanitizer (repro.serving.rwlock).

The detection tests build deliberately mis-ordered acquisition
fixtures and assert the sanitizer raises :class:`LockOrderError`
*instead of deadlocking*; the integration test runs a real
ServingRuntime workload with the sanitizer globally enabled and
requires zero violations (the static rules and the dynamic witness
must agree that the shipped discipline is clean).
"""

import random
import threading

import pytest

from repro.graph import EdgeUpdate
from repro.obs import MetricsRegistry
from repro.ppr import Fora, PPRParams
from repro.queueing.workload import QUERY, UPDATE, Request
from repro.serving import OK, ServingRuntime
from repro.serving import rwlock as rwlock_mod
from repro.serving.rwlock import (
    LockOrderError,
    LockSanitizer,
    RWLock,
    TrackedLock,
    default_sanitizer,
    sanitizer_enabled,
    wrap_mutex,
)

from tests.serving.test_stress import exact_query_fn, make_graph


@pytest.fixture
def san():
    return LockSanitizer(metrics=MetricsRegistry())


class TestEnvGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(rwlock_mod.SANITIZER_ENV, raising=False)
        assert not sanitizer_enabled()
        assert default_sanitizer() is None
        lock = threading.Lock()
        assert wrap_mutex(lock, "m") is lock  # zero overhead when off
        assert RWLock(name="x")._sanitizer is None

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(rwlock_mod.SANITIZER_ENV, value)
        assert not sanitizer_enabled()

    def test_enabled_wraps(self, monkeypatch, san):
        monkeypatch.setenv(rwlock_mod.SANITIZER_ENV, "1")
        assert sanitizer_enabled()
        wrapped = wrap_mutex(threading.Lock(), "m", san)
        assert isinstance(wrapped, TrackedLock)


class TestSelfDeadlocks:
    def test_read_write_upgrade_raises(self, san):
        lock = RWLock(name="A", sanitizer=san)
        with lock.read_locked():
            with pytest.raises(LockOrderError, match="upgrade"):
                lock.acquire_write(timeout=0.1)

    def test_recursive_read_raises(self, san):
        lock = RWLock(name="A", sanitizer=san)
        with lock.read_locked():
            with pytest.raises(LockOrderError, match="recursive read"):
                lock.acquire_read(timeout=0.1)

    def test_recursive_mutex_raises(self, san):
        mutex = wrap_mutex(threading.Lock(), "M", san)
        with mutex:
            with pytest.raises(LockOrderError, match="re-acquiring"):
                mutex.acquire(blocking=False)

    def test_sequential_reuse_is_fine(self, san):
        lock = RWLock(name="A", sanitizer=san)
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        assert san.violations == []


class TestOrderCycles:
    def test_single_thread_order_reversal_raises(self, san):
        a = RWLock(name="A", sanitizer=san)
        b = RWLock(name="B", sanitizer=san)
        with a.read_locked():
            with b.read_locked():
                pass
        with b.read_locked():
            with pytest.raises(LockOrderError, match="cycle"):
                a.acquire_read(timeout=0.1)

    def test_mutex_vs_rwlock_cycle_raises(self, san):
        rw = RWLock(name="serving.rwlock", sanitizer=san)
        mutex = wrap_mutex(threading.Lock(), "serving.seed", san)
        with rw.write_locked():
            with mutex:
                pass
        with mutex:
            with pytest.raises(LockOrderError, match="cycle"):
                rw.acquire_read(timeout=0.1)

    def test_consistent_order_never_raises(self, san):
        rw = RWLock(name="serving.rwlock", sanitizer=san)
        seed = wrap_mutex(threading.Lock(), "serving.seed", san)
        records = wrap_mutex(threading.Lock(), "serving.records", san)
        for _ in range(5):
            with rw.write_locked():
                with seed:
                    pass
                with records:
                    pass
            with rw.read_locked():
                with records:
                    pass
        assert san.violations == []

    def test_held_reports_current_stack(self, san):
        a = RWLock(name="A", sanitizer=san)
        with a.write_locked():
            assert san.held() == (("A", "write"),)
        assert san.held() == ()


@pytest.mark.stress
class TestDeliberateDeadlockFixture:
    def test_two_thread_ab_ba_detected_not_deadlocked(self, san):
        """The classic AB-BA deadlock, deterministically sequenced.

        Thread 1 holds A and blocks on B; thread 2 holds B and then
        requests A.  Without the sanitizer this hangs; with it, thread
        2 gets LockOrderError *before blocking* (the A->B edge was
        recorded when thread 1 attempted B), thread 2 releases B, and
        thread 1 proceeds — the suite finishes instead of timing out.
        """
        a = RWLock(name="A", sanitizer=san)
        b = RWLock(name="B", sanitizer=san)
        t1_has_a = threading.Event()
        t2_has_b = threading.Event()
        outcome: dict[str, object] = {}

        def thread_one():
            with a.write_locked():
                t1_has_a.set()
                t2_has_b.wait(5.0)
                # blocks until thread 2 aborts; records the A->B edge
                # in before_acquire, *then* parks
                with b.write_locked():
                    outcome["t1_got_b"] = True

        def thread_two():
            with b.write_locked():
                t2_has_b.set()
                t1_has_a.wait(5.0)
                # give thread 1 time to attempt B (edge A->B recorded
                # before it blocks on the held lock)
                for _ in range(100):
                    if ("A", "B") in [
                        (s, d)
                        for s, dsts in san._graph.items()
                        for d in dsts
                    ]:
                        break
                    threading.Event().wait(0.01)
                try:
                    a.acquire_write(timeout=5.0)
                    outcome["t2_got_a"] = True
                except LockOrderError as exc:
                    outcome["t2_error"] = str(exc)

        threads = [
            threading.Thread(target=thread_one, name="t1"),
            threading.Thread(target=thread_two, name="t2"),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads), "deadlocked!"
        assert "t2_error" in outcome, outcome
        assert "cycle" in str(outcome["t2_error"])
        assert outcome.get("t1_got_b") is True  # t1 recovered
        assert len(san.violations) == 1


@pytest.mark.stress
class TestRuntimeIntegration:
    @pytest.fixture
    def global_sanitizer(self, monkeypatch):
        """Enable the process-wide sanitizer with a fresh instance."""
        monkeypatch.setenv(rwlock_mod.SANITIZER_ENV, "1")
        fresh = LockSanitizer(metrics=MetricsRegistry())
        monkeypatch.setattr(rwlock_mod, "_default", fresh)
        return fresh

    def test_runtime_workload_zero_false_positives(self, global_sanitizer):
        """A full query/update workload under the sanitizer is clean.

        This is the dynamic witness for the static self-check: the
        runtime's rwlock -> {seed, records, tune, cache} order and its
        no-upgrade discipline hold under real interleavings.
        """
        rng = random.Random(0xC0FFEE)
        graph = make_graph(rng)
        metrics = MetricsRegistry()
        runtime = ServingRuntime(
            Fora(graph, PPRParams(walk_cap=100)),
            workers=3,
            epsilon_r=0.05,
            query_fn=exact_query_fn,
            metrics=metrics,
            drain_idle=True,
            idle_tick_s=0.002,
        )
        # the runtime's locks must actually be tracked
        assert runtime._rwlock._sanitizer is global_sanitizer
        assert isinstance(runtime._seed_lock, TrackedLock)
        nodes = list(graph.nodes())
        runtime.start()
        try:
            for i in range(120):
                if i % 4 == 0:
                    u, v = rng.sample(nodes, 2)
                    runtime.submit(
                        Request(0.0, UPDATE, update=EdgeUpdate(u, v))
                    )
                else:
                    runtime.submit(
                        Request(0.0, QUERY, source=rng.choice(nodes))
                    )
            runtime.drain()
        finally:
            runtime.stop()
        assert global_sanitizer.violations == []
        served = [r for r in runtime.records if r.status == OK]
        assert len(served) >= 100  # the workload really ran
        acquired = global_sanitizer._metrics.counter("locks.acquired")
        assert acquired.value > 0  # and the sanitizer really watched
