"""Tests for query coalescing in the serving runtime.

The batch dispatcher pops consecutive queries off the admission queue
(up to ``max_batch``, waiting at most ``batch_window_s``), answers them
on one graph snapshot under a single read-lock hold, and preserves FIFO
with respect to updates: a non-query ticket popped mid-collection stops
the batch and runs *after* it — exactly its queue position.
"""

import time

import numpy as np
import pytest

from repro.graph import DynamicGraph, EdgeUpdate
from repro.obs import MetricsRegistry
from repro.ppr import Fora, PPRParams
from repro.queueing.workload import QUERY, UPDATE, Request
from repro.serving import FAILED, OK, TIMEOUT, AdmissionQueue, ServingRuntime, Ticket


def make_graph():
    return DynamicGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (0, 2), (2, 3), (3, 0), (3, 1)]
    )

def make_runtime(algorithm=None, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("idle_tick_s", 0.005)
    if algorithm is None:
        algorithm = Fora(make_graph(), PPRParams(walk_cap=100))
    return ServingRuntime(algorithm, **kwargs)


class TestValidation:
    def test_max_batch_below_one_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            make_runtime(max_batch=0)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="batch_window_s"):
            make_runtime(batch_window_s=-0.1)


class TestAdmissionQueuePoll:
    def test_poll_empty_returns_none(self):
        q = AdmissionQueue(capacity=2, metrics=MetricsRegistry())
        assert q.poll() is None

    def test_poll_pops_and_tracks_depth(self):
        q = AdmissionQueue(capacity=4, metrics=MetricsRegistry())
        t = Ticket(Request(0.0, QUERY, source=0), 0.0)
        q.offer(t)
        q.offer(t)
        assert q.poll() is t
        assert q.depth == 1
        q.task_done()


class TestBatchDispatch:
    def test_queries_coalesce_into_batches(self):
        metrics = MetricsRegistry()
        runtime = make_runtime(
            workers=1, queue_capacity=0, metrics=metrics,
            max_batch=8, batch_window_s=0.2,
        )
        with runtime:
            for source in range(12):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.drain()
        counters = metrics.snapshot()["counters"]
        assert counters["serving.batches"] >= 1
        assert counters["serving.batched_queries"] >= 2
        hist = metrics.histogram("serving.batch_size")
        assert hist.count == counters["serving.batches"]
        assert hist.max <= 8
        assert metrics.histogram("service.query_batch").count >= 1
        assert all(r.status == OK for r in runtime.records)
        assert len(runtime.records) == 12

    def test_single_query_stays_on_scalar_path(self):
        """A lone query (window expires empty) is served unbatched."""
        metrics = MetricsRegistry()
        runtime = make_runtime(
            workers=1, queue_capacity=0, metrics=metrics,
            max_batch=8, batch_window_s=0.001,
        )
        with runtime:
            runtime.submit(Request(0.0, QUERY, source=0))
            runtime.drain()
        assert metrics.counter("serving.batches").value == 0
        assert metrics.histogram("service.query").count == 1

    def test_max_batch_one_never_batches(self):
        metrics = MetricsRegistry()
        runtime = make_runtime(
            workers=1, queue_capacity=0, metrics=metrics, max_batch=1,
        )
        with runtime:
            for source in range(6):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.drain()
        assert metrics.counter("serving.batches").value == 0
        assert metrics.histogram("service.query").count == 6

    def test_update_stops_batch_and_runs_after_it(self):
        """An update popped mid-collection keeps its FIFO position:
        the queries ahead of it run first (as one batch), then it
        applies — never interleaving a write inside a batch."""
        graph = make_graph()
        metrics = MetricsRegistry()
        algorithm = Fora(graph, PPRParams(walk_cap=100))
        runtime = make_runtime(
            algorithm, workers=1, queue_capacity=0, metrics=metrics,
            max_batch=16, batch_window_s=0.2,
        )
        with runtime:
            for source in range(5):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.submit(Request(0.0, UPDATE, update=EdgeUpdate(1, 3)))
            for source in range(3):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.drain()
        assert graph.has_edge(1, 3)
        assert all(r.status == OK for r in runtime.records)
        query_records = [r for r in runtime.records if r.kind == QUERY]
        assert len(query_records) == 8
        # the pre-update queries ran on the pre-update graph version
        update_record = next(
            r for r in runtime.records if r.kind == UPDATE
        )
        assert update_record.version is not None

    def test_batch_uses_custom_query_fn(self):
        calls = []

        def query_fn(graph, source):
            calls.append(source)
            return source * 10

        runtime = make_runtime(
            workers=1, queue_capacity=0, query_fn=query_fn,
            max_batch=4, batch_window_s=0.2,
        )
        with runtime:
            for source in range(4):
                runtime.submit(Request(0.0, QUERY, source=source))
            runtime.drain()
        assert sorted(calls) == [0, 1, 2, 3]
        results = {r.request.source: r.result for r in runtime.records}
        assert results == {0: 0, 1: 10, 2: 20, 3: 30}

    def test_batched_engine_end_to_end(self):
        """Fora's batched kernel serves coalesced queries; every
        answer conserves probability mass."""
        algorithm = Fora(
            make_graph(), PPRParams(walk_cap=100), engine="batched"
        )
        runtime = make_runtime(
            algorithm, workers=1, queue_capacity=0,
            max_batch=8, batch_window_s=0.2,
        )
        with runtime:
            for source in range(8):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.drain()
        assert all(r.status == OK for r in runtime.records)
        for record in runtime.records:
            mass = sum(record.result.as_dict().values())
            assert mass == pytest.approx(1.0, abs=0.05)

    def test_batch_failure_fails_every_member(self):
        metrics = MetricsRegistry()

        def explode(graph, source):
            raise RuntimeError("boom")

        runtime = make_runtime(
            workers=1, queue_capacity=0, metrics=metrics,
            query_fn=explode, max_batch=8, batch_window_s=0.2,
        )
        with runtime:
            for source in range(4):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.drain()
        failed = [r for r in runtime.records if r.status == FAILED]
        assert len(failed) == 4
        assert metrics.snapshot()["counters"]["serving.faults"] >= 4

    def test_expired_tickets_time_out_inside_batch(self):
        metrics = MetricsRegistry()

        def slow(graph, source):
            time.sleep(0.01)
            return source

        runtime = make_runtime(
            workers=1, queue_capacity=0, metrics=metrics,
            query_fn=slow, max_batch=8, batch_window_s=0.05,
            deadline_s=1e-6,
        )
        with runtime:
            for source in range(6):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.drain()
        statuses = {r.status for r in runtime.records}
        assert statuses <= {TIMEOUT, OK}
        assert TIMEOUT in statuses
        assert metrics.snapshot()["counters"]["serving.timeout"] >= 1

    def test_batched_answers_near_exact_ppr(self):
        """query_batch answers carry the same approximation quality as
        scalar ones: each row stays within push+walk tolerance of the
        exact PPR vector (walk draw order differs, so compare to the
        ground truth rather than bit-for-bit to the scalar path)."""
        from repro.ppr import ppr_exact

        graph = make_graph()
        algorithm = Fora(graph, PPRParams(walk_cap=4000), engine="batched")
        algorithm.seed(0)
        sources = [0, 1, 2, 3]
        results = algorithm.query_batch(sources)
        for source, got in zip(sources, results):
            exact = ppr_exact(graph, source, alpha=algorithm.params.alpha)
            errors = [
                abs(got.get(node, 0.0) - exact.get(node, 0.0))
                for node in graph.nodes()
            ]
            assert max(errors) < 0.1


class TestBatchAutoTune:
    """Online feedback: the measured batch-size distribution collected
    by ``BatchAwareCostModel`` tunes the live admission batching knobs
    (the ROADMAP carry-over — the distribution used to be collected
    but never read back)."""

    def make_model(self, batch_size=1.0, batch_size_fn=None, sigma=0.5):
        from repro.core.cost_models import BatchAwareCostModel, ForaCostModel

        inner = ForaCostModel(
            n=1000,
            m=5000,
            taus={
                "Forward Push": 1e-6,
                "Random Walk": 1e-3,
                "Graph Update": 1e-5,
            },
        )
        return BatchAwareCostModel(
            inner,
            shared_fraction=sigma,
            batch_size=batch_size,
            batch_size_fn=batch_size_fn,
        )

    def test_static_knobs_without_model(self):
        runtime = make_runtime(max_batch=4, batch_window_s=0.002)
        assert runtime.effective_max_batch == 4
        assert runtime.effective_batch_window_s == 0.002
        # retune without a model is a no-op
        assert runtime.retune_batching() == (4, 0.002)

    def test_residency_cap_bounds_max_batch(self, monkeypatch):
        from repro.graph import barabasi_albert_graph
        from repro.ppr.dispatch import ENV_RESIDENT_KB

        big = Fora(
            barabasi_albert_graph(2000, attach=2, seed=3),
            PPRParams(walk_cap=100),
        )
        runtime = make_runtime(
            algorithm=big,
            max_batch=8,
            batch_model=self.make_model(batch_size=4.0),
        )
        monkeypatch.setenv(ENV_RESIDENT_KB, "1")  # fits < 1 batch row
        new_max, _ = runtime.retune_batching()
        assert new_max == 1
        assert runtime.effective_max_batch == 1

    def test_thin_batches_shrink_window_to_zero(self):
        runtime = make_runtime(
            max_batch=8,
            batch_window_s=0.004,
            batch_model=self.make_model(batch_size=1.0),
        )
        for _ in range(12):
            runtime.retune_batching()
        assert runtime.effective_batch_window_s == 0.0

    def test_saturated_batches_widen_window_bounded(self):
        runtime = make_runtime(
            max_batch=8,
            batch_window_s=0.001,
            batch_model=self.make_model(batch_size=8.0),
        )
        for _ in range(12):
            runtime.retune_batching()
        hi = max(2 * 0.001, 0.002)
        assert 0.001 <= runtime.effective_batch_window_s <= hi

    def test_gauges_exported(self):
        metrics = MetricsRegistry()
        runtime = make_runtime(
            max_batch=4,
            batch_model=self.make_model(batch_size=4.0),
            metrics=metrics,
        )
        runtime.retune_batching()
        gauges = metrics.snapshot()["gauges"]
        assert gauges["serving.effective_max_batch"]["value"] == 4.0
        assert "serving.effective_batch_window_s" in gauges

    def test_measured_distribution_closes_the_loop(self):
        """End to end: batches dispatched by the runtime feed the
        ``serving.batch_size`` histogram, the model reads its mean,
        and the retune (every ``tune_every`` batches) adjusts the
        live knobs from that measurement."""
        metrics = MetricsRegistry()
        model = self.make_model(
            batch_size_fn=lambda: metrics.histogram(
                "serving.batch_size"
            ).mean()
        )
        runtime = make_runtime(
            workers=1,
            max_batch=4,
            batch_window_s=0.005,
            batch_model=model,
            tune_every=1,
            metrics=metrics,
        )
        with runtime:
            for source in range(8):
                runtime.submit(Request(0.0, QUERY, source=source % 4))
            runtime.drain()
        assert metrics.snapshot()["counters"]["serving.batches"] >= 1
        assert model.batch_size() >= 1.0
        gauges = metrics.snapshot()["gauges"]
        assert "serving.effective_max_batch" in gauges

    def test_tune_every_validation(self):
        with pytest.raises(ValueError, match="tune_every"):
            make_runtime(tune_every=0)
