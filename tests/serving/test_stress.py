"""Concurrency stress tests for the serving runtime.

Randomized query/update interleavings on a multi-worker pool, checked
against a *sequential oracle*: every completed query records the graph
version it observed under the read lock; replaying the applied updates
in version order on a shadow copy of the initial graph reconstructs
each snapshot, and the query's answer must equal ``ppr_exact`` on that
snapshot.  Zero tolerance beyond float noise — any torn read, lost
update, or mis-versioned snapshot shows up as a violation.

Marked ``stress`` (see pyproject) so CI can run them in a dedicated
job; they stay fast enough for the default suite too.  No wall-clock
speedup assertions: this container is single-core and the GIL
serializes pure-Python work, so the tests certify correctness under
interleaving, not scaling.
"""

import random
import threading

import numpy as np
import pytest

from repro.graph import DynamicGraph, EdgeUpdate
from repro.obs import MetricsRegistry
from repro.ppr import Fora, PPRParams
from repro.ppr.power_iteration import ppr_exact
from repro.queueing.workload import QUERY, UPDATE, Request
from repro.serving import FAILED, OK, ServingRuntime

ALPHA = 0.2


def make_graph(rng):
    n = 40
    edges = set()
    for u in range(n):
        edges.add((u, (u + 1) % n))  # ring: keeps the graph connected
    while len(edges) < 3 * n:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return DynamicGraph.from_edges(sorted(edges))


def exact_query_fn(graph, source):
    """Deterministic executor: answers are a pure function of the
    snapshot, so the oracle comparison is exact (up to float noise)."""
    return ppr_exact(graph, source, alpha=ALPHA).as_dict()


def make_workload(graph, rng, num_queries=60, num_updates=30):
    nodes = list(graph.nodes())
    requests = []
    for i in range(num_queries):
        requests.append(Request(i * 1e-4, QUERY, source=rng.choice(nodes)))
    for i in range(num_updates):
        u, v = rng.sample(nodes, 2)
        requests.append(Request(i * 1e-4, UPDATE, update=EdgeUpdate(u, v)))
    rng.shuffle(requests)
    return requests


def check_oracle(initial_graph, final_graph, records):
    """Sequential-oracle check; returns a list of violation strings."""
    violations = []
    applied = sorted(
        (r for r in records if r.kind == UPDATE and r.status == OK),
        key=lambda r: r.version,
    )
    versions = [r.version for r in applied]
    if len(set(versions)) != len(versions):
        violations.append("duplicate update versions (writer not serial)")

    # replaying the applied updates must reproduce the final structure
    shadow = initial_graph.copy()
    for record in applied:
        record.request.update.apply(shadow)
    if set(shadow.edges()) != set(final_graph.edges()):
        violations.append("replay of applied updates != final edge set")

    # each query's answer must equal exact PPR on its snapshot
    snapshots = {initial_graph.version: initial_graph.copy()}
    shadow = initial_graph.copy()
    for record in applied:
        record.request.update.apply(shadow)
        snapshots[record.version] = shadow.copy()
    valid_versions = set(snapshots)
    for record in records:
        if record.kind != QUERY or record.status != OK:
            continue
        if record.version not in valid_versions:
            violations.append(
                f"query saw version {record.version}, never produced"
            )
            continue
        expected = ppr_exact(
            snapshots[record.version], record.request.source, alpha=ALPHA
        ).as_dict()
        got = record.result
        keys = set(expected) | set(got)
        diff = max(
            abs(expected.get(k, 0.0) - got.get(k, 0.0)) for k in keys
        )
        if diff > 1e-9:
            violations.append(
                f"query@v{record.version} diverges from oracle by {diff}"
            )
    return violations


@pytest.mark.stress
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("workers", [3, 4])
def test_randomized_interleavings_match_sequential_oracle(seed, workers):
    rng = random.Random(seed)
    graph = make_graph(rng)
    initial = graph.copy()
    runtime = ServingRuntime(
        Fora(graph, PPRParams(walk_cap=100)),
        workers=workers,
        epsilon_r=50.0,
        queue_capacity=0,
        query_fn=exact_query_fn,
        idle_tick_s=0.002,
        metrics=MetricsRegistry(),
    )
    with runtime:
        report = runtime.serve(make_workload(graph, rng))
    assert report.shed_count == 0 and report.fault_count == 0
    assert runtime.pending_updates == 0
    violations = check_oracle(initial, graph, report.records)
    assert violations == []


@pytest.mark.stress
def test_concurrent_producers(dummy=None):
    """Submissions racing from several threads stay consistent."""
    rng = random.Random(7)
    graph = make_graph(rng)
    initial = graph.copy()
    runtime = ServingRuntime(
        Fora(graph, PPRParams(walk_cap=100)),
        workers=3,
        epsilon_r=50.0,
        queue_capacity=0,
        query_fn=exact_query_fn,
        idle_tick_s=0.002,
        metrics=MetricsRegistry(),
    )
    chunks = [make_workload(graph, random.Random(100 + i), 20, 10)
              for i in range(4)]
    with runtime:
        threads = [
            threading.Thread(
                target=lambda c=chunk: [runtime.submit(r) for r in c]
            )
            for chunk in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        runtime.drain()
    total = sum(len(c) for c in chunks)
    assert len(runtime.records) == total
    violations = check_oracle(initial, graph, runtime.records)
    assert violations == []


@pytest.mark.stress
def test_injected_faults_keep_survivors_consistent():
    """Random update failures degrade the runtime but never corrupt
    the surviving state: the oracle still holds for everything that
    completed, and failed updates are not applied."""
    rng = random.Random(11)
    graph = make_graph(rng)
    initial = graph.copy()
    algorithm = Fora(graph, PPRParams(walk_cap=100))
    original = algorithm.apply_update
    fail_rng = random.Random(13)

    def flaky(update):
        if fail_rng.random() < 0.15:
            raise RuntimeError("injected fault")
        return original(update)

    algorithm.apply_update = flaky
    runtime = ServingRuntime(
        algorithm,
        workers=3,
        epsilon_r=50.0,
        queue_capacity=0,
        query_fn=exact_query_fn,
        idle_tick_s=0.002,
        metrics=MetricsRegistry(),
    )
    with runtime:
        report = runtime.serve(make_workload(graph, rng, 40, 30))
    failed = report.of_status(FAILED)
    assert failed, "fault injection never fired (adjust the rate)"
    assert runtime.degraded
    assert runtime.pending_updates == 0
    violations = check_oracle(initial, graph, report.records)
    assert violations == []
    # every submitted request is accounted for exactly once
    assert len(report.records) == 70


@pytest.mark.stress
def test_fcfs_mode_applies_updates_inline():
    """epsilon_r=0 (strict FCFS): updates apply inline, still correct."""
    rng = random.Random(21)
    graph = make_graph(rng)
    initial = graph.copy()
    runtime = ServingRuntime(
        Fora(graph, PPRParams(walk_cap=100)),
        workers=4,
        epsilon_r=0.0,
        queue_capacity=0,
        query_fn=exact_query_fn,
        idle_tick_s=0.002,
        metrics=MetricsRegistry(),
    )
    with runtime:
        report = runtime.serve(make_workload(graph, rng, 40, 20))
    assert report.fault_count == 0
    violations = check_oracle(initial, graph, report.records)
    assert violations == []


@pytest.mark.stress
def test_deterministic_result_values():
    """The same workload served twice yields identical final graphs
    and, per snapshot version, identical query answers."""
    def run_once(seed):
        rng = random.Random(seed)
        graph = make_graph(rng)
        runtime = ServingRuntime(
            Fora(graph, PPRParams(walk_cap=100)),
            workers=3,
            epsilon_r=50.0,
            queue_capacity=0,
            query_fn=exact_query_fn,
            idle_tick_s=0.002,
            metrics=MetricsRegistry(),
        )
        with runtime:
            runtime.serve(make_workload(graph, rng))
        return graph

    g1, g2 = run_once(5), run_once(5)
    assert set(g1.edges()) == set(g2.edges())
    node = next(iter(g1.nodes()))
    np.testing.assert_allclose(
        ppr_exact(g1, node, alpha=ALPHA).values,
        ppr_exact(g2, node, alpha=ALPHA).values,
    )


@pytest.mark.stress
@pytest.mark.parametrize("seed", [0, 3])
def test_incremental_fora_plus_under_concurrency(seed):
    """Incremental walk-index maintenance inside the writer critical
    section: FORA+inc serves a racing query/update mix (Seed-deferred
    flushes included via epsilon_r) with zero snapshot-version
    violations, and the edge→walk map plus the per-node walk-budget
    invariant hold on the final graph."""
    from repro.ppr import ForaPlusIncremental, csr_view

    rng = random.Random(seed)
    graph = make_graph(rng)
    initial = graph.copy()
    algorithm = ForaPlusIncremental(graph, PPRParams(walk_cap=100))
    algorithm.seed(seed)
    runtime = ServingRuntime(
        algorithm,
        workers=3,
        epsilon_r=50.0,
        queue_capacity=0,
        query_fn=exact_query_fn,
        idle_tick_s=0.002,
        metrics=MetricsRegistry(),
    )
    with runtime:
        report = runtime.serve(make_workload(graph, rng))
    assert report.shed_count == 0 and report.fault_count == 0
    assert runtime.pending_updates == 0
    violations = check_oracle(initial, graph, report.records)
    assert violations == []
    # updates went through the incremental path, never a rebuild
    assert algorithm.timers.count("Index Update") == 30
    # the patched index is structurally consistent with the final graph
    view = csr_view(graph)
    index = algorithm._walk_index()
    assert index.validate_edge_map(view) == []
    expected = np.maximum(
        np.ceil(
            index.walks_per_unit * np.maximum(view.out_deg, 1)
        ).astype(np.int64),
        1,
    )
    assert (index.counts == expected).all()
