"""Open-loop paced replay (``ServingRuntime.serve_timed``)."""

import time

import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.obs import MetricsRegistry
from repro.ppr.base import PPRParams
from repro.ppr.fora import Fora
from repro.queueing.workload import QUERY, Request, Workload
from repro.serving.runtime import OK, ServingRuntime


def make_runtime(**kwargs):
    graph = barabasi_albert_graph(80, attach=2, seed=2)
    algorithm = Fora(graph, PPRParams(alpha=0.2, epsilon=0.5, walk_cap=16))
    algorithm.seed(0)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ServingRuntime(algorithm, workers=2, **kwargs)


def spaced_workload(count=8, gap=0.2):
    requests = [
        Request(i * gap, QUERY, source=i % 20) for i in range(count)
    ]
    return Workload(requests, count * gap, 1.0 / gap, 0.0)


class TestServeTimed:
    def test_rejects_non_positive_time_scale(self):
        runtime = make_runtime()
        with runtime:
            with pytest.raises(ValueError, match="time_scale"):
                runtime.serve_timed(spaced_workload(), time_scale=0.0)

    def test_paces_submissions_to_arrival_times(self):
        runtime = make_runtime()
        workload = spaced_workload(count=6, gap=0.3)
        scale = 0.1
        with runtime:
            started = time.perf_counter()
            report = runtime.serve_timed(workload, time_scale=scale)
            elapsed = time.perf_counter() - started
        # last arrival is 1.5 virtual seconds -> >= 0.15 wall seconds
        assert elapsed >= workload.requests[-1].arrival * scale
        assert len(report.records) == len(workload)
        assert all(r.status == OK for r in report.records)

    def test_on_submit_hook_sees_every_request_in_order(self):
        runtime = make_runtime()
        workload = spaced_workload(count=5, gap=0.1)
        seen = []
        with runtime:
            runtime.serve_timed(
                workload,
                time_scale=0.05,
                on_submit=lambda request, now: seen.append(
                    (request.arrival, now)
                ),
            )
        assert [arrival for arrival, _ in seen] == [
            r.arrival for r in workload
        ]
        wall_times = [now for _, now in seen]
        assert wall_times == sorted(wall_times)

    def test_report_covers_only_this_replay(self):
        runtime = make_runtime()
        with runtime:
            first = runtime.serve(spaced_workload(count=4))
            second = runtime.serve_timed(
                spaced_workload(count=3), time_scale=0.01
            )
        assert len(first.records) == 4
        assert len(second.records) == 3
