"""Tests for the Augmented Lagrangian optimizer on known problems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AugmentedLagrangianOptimizer,
    ConstrainedProblem,
    OptimizationResult,
)


def quadratic(center):
    center = np.asarray(center, dtype=float)
    return lambda x: float(np.sum((x - center) ** 2))


class TestUnconstrained:
    def test_reaches_interior_minimum(self):
        problem = ConstrainedProblem(
            objective=quadratic([2.0]), constraints=(), bounds=((0.0, 10.0),)
        )
        result = AugmentedLagrangianOptimizer().minimize(problem, np.array([9.0]))
        assert result.x[0] == pytest.approx(2.0, abs=1e-5)
        assert result.value == pytest.approx(0.0, abs=1e-8)
        assert result.feasible

    def test_bound_clipping(self):
        """Minimum outside the box lands on the boundary."""
        problem = ConstrainedProblem(
            objective=quadratic([5.0]), constraints=(), bounds=((0.0, 1.0),)
        )
        result = AugmentedLagrangianOptimizer().minimize(problem, np.array([0.5]))
        assert result.x[0] == pytest.approx(1.0, abs=1e-6)

    def test_start_outside_bounds_is_clipped(self):
        problem = ConstrainedProblem(
            objective=quadratic([0.5]), constraints=(), bounds=((0.0, 1.0),)
        )
        result = AugmentedLagrangianOptimizer().minimize(problem, np.array([99.0]))
        assert result.x[0] == pytest.approx(0.5, abs=1e-5)


class TestConstrained:
    def test_active_inequality(self):
        """min (x-2)^2 s.t. x <= 1 has solution x = 1."""
        problem = ConstrainedProblem(
            objective=quadratic([2.0]),
            constraints=(lambda x: float(x[0] - 1.0),),
            bounds=((-10.0, 10.0),),
        )
        result = AugmentedLagrangianOptimizer().minimize(problem, np.array([-5.0]))
        assert result.x[0] == pytest.approx(1.0, abs=1e-3)
        assert result.feasible

    def test_inactive_inequality(self):
        """Constraint satisfied at the unconstrained optimum is ignored."""
        problem = ConstrainedProblem(
            objective=quadratic([0.5]),
            constraints=(lambda x: float(x[0] - 1.0),),
            bounds=((-10.0, 10.0),),
        )
        result = AugmentedLagrangianOptimizer().minimize(problem, np.array([5.0]))
        assert result.x[0] == pytest.approx(0.5, abs=1e-4)

    def test_two_dimensional_budget(self):
        """min (x-3)^2 + (y-3)^2 s.t. x + y <= 2 -> x = y = 1."""
        problem = ConstrainedProblem(
            objective=quadratic([3.0, 3.0]),
            constraints=(lambda x: float(x[0] + x[1] - 2.0),),
            bounds=((-5.0, 5.0), (-5.0, 5.0)),
        )
        result = AugmentedLagrangianOptimizer().minimize(
            problem, np.array([0.0, 0.0])
        )
        assert result.x[0] == pytest.approx(1.0, abs=1e-2)
        assert result.x[1] == pytest.approx(1.0, abs=1e-2)

    def test_objective_history_recorded(self):
        problem = ConstrainedProblem(
            objective=quadratic([2.0]),
            constraints=(lambda x: float(x[0] - 1.0),),
            bounds=((-10.0, 10.0),),
        )
        result = AugmentedLagrangianOptimizer().minimize(problem, np.array([0.0]))
        assert len(result.history) == result.outer_iterations


class TestMultistart:
    def _bimodal_problem(self):
        """Two local minima at x = -2 (value 1) and x = 2 (value 0)."""

        def objective(x):
            v = float(x[0])
            return min((v + 2.0) ** 2 + 1.0, (v - 2.0) ** 2)

        return ConstrainedProblem(
            objective=objective, constraints=(), bounds=((-5.0, 5.0),)
        )

    def test_multistart_escapes_local_minimum(self):
        problem = self._bimodal_problem()
        optimizer = AugmentedLagrangianOptimizer()
        result = optimizer.minimize_multistart(
            problem, [np.array([-4.0]), np.array([4.0])]
        )
        assert result.x[0] == pytest.approx(2.0, abs=1e-3)

    def test_multistart_requires_starts(self):
        with pytest.raises(ValueError):
            AugmentedLagrangianOptimizer().minimize_multistart(
                self._bimodal_problem(), []
            )

    def test_infeasible_problem_returns_least_violating(self):
        """x <= -1 and x >= 1 cannot both hold; result reports violation."""
        problem = ConstrainedProblem(
            objective=quadratic([0.0]),
            constraints=(
                lambda x: float(x[0] + 1.0),   # x <= -1
                lambda x: float(1.0 - x[0]),   # x >= 1
            ),
            bounds=((-5.0, 5.0),),
        )
        result = AugmentedLagrangianOptimizer(max_outer=8).minimize_multistart(
            problem, [np.array([0.0])]
        )
        assert not result.feasible
        assert result.constraint_violation > 0.5


class TestValidation:
    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            AugmentedLagrangianOptimizer(max_outer=0)
        with pytest.raises(ValueError):
            AugmentedLagrangianOptimizer(mu0=-1.0)
        with pytest.raises(ValueError):
            AugmentedLagrangianOptimizer(mu_growth=1.0)

    def test_empty_bound_interval(self):
        with pytest.raises(ValueError):
            ConstrainedProblem(
                objective=quadratic([0.0]), constraints=(), bounds=((1.0, 0.0),)
            )

    def test_violation_helper(self):
        problem = ConstrainedProblem(
            objective=quadratic([0.0]),
            constraints=(lambda x: float(x[0] - 1.0),),
            bounds=((-5.0, 5.0),),
        )
        assert problem.violation(np.array([0.0])) == 0.0
        assert problem.violation(np.array([3.0])) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Property: solutions respect bounds and (when possible) constraints.
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    center=st.floats(-3.0, 3.0),
    cap=st.floats(-2.0, 2.0),
    start=st.floats(-4.0, 4.0),
)
def test_solution_feasible_and_bounded(center, cap, start):
    problem = ConstrainedProblem(
        objective=quadratic([center]),
        constraints=(lambda x: float(x[0] - cap),),
        bounds=((-4.0, 4.0),),
    )
    result = AugmentedLagrangianOptimizer(max_outer=15).minimize(
        problem, np.array([start])
    )
    assert -4.0 - 1e-9 <= result.x[0] <= 4.0 + 1e-9
    assert result.constraint_violation < 1e-3
    # optimum is min(center, cap) clipped to bounds
    expected = min(max(min(center, cap), -4.0), 4.0)
    assert result.x[0] == pytest.approx(expected, abs=1e-2)
