"""Tests for QuotaSystem (the Algorithm 2 serving loop)."""

import numpy as np
import pytest

from repro.core import (
    QuotaController,
    QuotaSystem,
    RateEstimator,
    calibrated_cost_model,
)
from repro.graph import barabasi_albert_graph
from repro.ppr import Agenda, Fora, PPRParams, ppr_exact
from repro.queueing import generate_workload
from repro.queueing.workload import QUERY, UPDATE


@pytest.fixture
def graph():
    return barabasi_albert_graph(120, attach=3, seed=2)


@pytest.fixture
def params():
    return PPRParams(walk_cap=1000)


@pytest.fixture
def workload(graph):
    return generate_workload(graph, 20.0, 20.0, 3.0, rng=1)


class TestBaselineReplay:
    def test_processes_every_request(self, graph, params, workload):
        system = QuotaSystem(Fora(graph.copy(), params))
        result = system.process(workload)
        assert len(result) == len(workload)
        assert len(result.of_kind(QUERY)) == workload.num_queries

    def test_fcfs_order_without_seed(self, graph, params, workload):
        system = QuotaSystem(Fora(graph.copy(), params))
        result = system.process(workload)
        starts = [c.start for c in result.completed]
        assert starts == sorted(starts)

    def test_response_time_positive(self, graph, params, workload):
        system = QuotaSystem(Fora(graph.copy(), params))
        result = system.process(workload)
        assert result.mean_query_response_time() > 0.0

    def test_graph_reflects_all_updates(self, graph, params, workload):
        shadow = graph.copy()
        for request in workload:
            if request.kind == UPDATE:
                request.update.apply(shadow)
        alg = Fora(graph.copy(), params)
        QuotaSystem(alg).process(workload)
        assert set(alg.graph.edges()) == set(shadow.edges())

    def test_query_callback_invoked(self, graph, params, workload):
        calls = []
        system = QuotaSystem(Fora(graph.copy(), params))
        system.process(
            workload, query_callback=lambda req, est, pending: calls.append(
                (req.source, est, pending)
            )
        )
        assert len(calls) == workload.num_queries
        source, estimate, pending = calls[0]
        assert estimate[source] >= 0.0
        assert pending == 0  # no Seed deferral


class TestSeedIntegration:
    def test_updates_deferred_then_flushed(self, graph, params):
        """Under contention queries overtake updates; nothing is lost."""
        # compress arrivals so the server is continuously busy —
        # idle-time draining then cannot empty the pending queue
        contended = generate_workload(graph, 150.0, 600.0, 1.0, rng=5)
        alg = Fora(graph.copy(), params)
        system = QuotaSystem(alg, epsilon_r=100.0)  # defer everything
        pending_seen = []
        result = system.process(
            contended,
            query_callback=lambda req, est, pending: pending_seen.append(
                pending
            ),
        )
        # all updates eventually completed (flush or final drain)
        assert len(result.of_kind(UPDATE)) == contended.num_updates
        assert max(pending_seen) > 0

    def test_seed_preserves_total_work_lemma3(self, graph, params, workload):
        """Lemma 3: total processing cost is unchanged by reordering."""
        plain = QuotaSystem(Fora(graph.copy(), params))
        seeded = QuotaSystem(Fora(graph.copy(), params), epsilon_r=0.5)
        plain.algorithm.seed(0)
        seeded.algorithm.seed(0)
        r_plain = plain.process(workload)
        r_seed = seeded.process(workload)
        assert r_seed.total_busy_time() == pytest.approx(
            r_plain.total_busy_time(), rel=0.5
        )

    def test_seed_never_hurts_query_response(self, graph, params, no_gc):
        """Lemma 3: W after Seed <= W before.

        Uses FORA+ under an update-heavy mix, where index rebuilds make
        updates expensive and overtaking them visibly helps queries.

        Determinism notes (this test compares *measured* wall-clock
        medians, so it needs active deflaking; it used to fail on full
        ``pytest -q`` runs while passing in isolation):

        * every RNG is pinned — the workload (``rng=7``), the fixture
          graph (``seed=2``), and both algorithm instances
          (``seed(1)``) — so the only nondeterminism left is timing
          noise from whatever the rest of the suite did to the
          process (allocator state, cache pollution, late GC);
        * each system gets a **private** ``MetricsRegistry`` so the
          process-wide registry other tests mutate is never shared;
        * the per-side statistic is the **min** of replay medians:
          scheduling noise only ever *adds* time, so the min of
          repeated measurements is the best estimate of the true
          service median on a noisy box;
        * one bounded in-test re-run (the CI re-run guard; see
          docs/DEVELOPMENT.md): a comparison of two measured medians
          on shared CI hardware has irreducible tail risk, so a
          failed attempt is retried at most twice before failing for
          real.  A genuine Lemma 3 regression fails all attempts.
        """
        from repro.obs import MetricsRegistry
        from repro.ppr import ForaPlus

        # heavily contended cell: rates are matched to this tiny
        # fixture graph's sub-millisecond service times so queueing
        # (not service noise) dominates the comparison
        workload = generate_workload(graph, 300.0, 1200.0, 2.0, rng=7)

        def measure_once():
            # min of medians of 4 replays, alternating run order so
            # machine-speed drift within a replay cancels
            plain_medians, seed_medians = [], []
            for replay in range(4):
                runs = [
                    (
                        "plain",
                        QuotaSystem(
                            ForaPlus(graph.copy(), params),
                            metrics=MetricsRegistry(),
                        ),
                    ),
                    (
                        "seed",
                        QuotaSystem(
                            ForaPlus(graph.copy(), params),
                            epsilon_r=1.0,
                            metrics=MetricsRegistry(),
                        ),
                    ),
                ]
                if replay % 2:
                    runs.reverse()
                for label, system in runs:
                    system.algorithm.seed(1)
                    median = system.process(
                        workload
                    ).percentile_query_response_time(50)
                    (
                        plain_medians
                        if label == "plain"
                        else seed_medians
                    ).append(median)
            return min(seed_medians), min(plain_medians)

        for attempt in range(3):
            seed_median, plain_median = measure_once()
            if seed_median <= plain_median * 1.2:
                return
        pytest.fail(
            f"Seed median {seed_median:.6f}s > 1.2x plain median "
            f"{plain_median:.6f}s on all 3 attempts"
        )

    def test_epsilon_zero_equals_fcfs(self, graph, params, workload):
        """epsilon_r = 0 must not defer: identical completion order."""
        a = QuotaSystem(Fora(graph.copy(), params))
        b = QuotaSystem(Fora(graph.copy(), params), epsilon_r=0.0)
        a.algorithm.seed(2)
        b.algorithm.seed(2)
        ra = a.process(workload)
        rb = b.process(workload)
        assert [c.kind for c in ra.completed] == [c.kind for c in rb.completed]

    def test_seed_accuracy_within_budget(self, graph, params):
        """Queries on the stale graph stay within epsilon_r + base error."""
        epsilon_r = 0.3
        workload = generate_workload(graph, 10.0, 20.0, 2.0, rng=3)
        alg = Fora(graph.copy(), params)
        alg.seed(3)
        system = QuotaSystem(alg, epsilon_r=epsilon_r)

        # shadow graph with every update applied up-front: queries are
        # compared against the PPR of the *fully updated* graph, the
        # strictest reading of the ordering-inaccuracy budget
        shadow = graph.copy()
        for request in workload:
            if request.kind == UPDATE:
                request.update.apply(shadow)

        errors = []

        def callback(request, estimate, pending):
            true_pi = ppr_exact(shadow, request.source, alpha=params.alpha)
            errors.append(
                max(
                    abs(estimate.get(v, 0.0) - true_pi.get(v, 0.0))
                    for v in shadow.nodes()
                )
            )

        system.process(workload, query_callback=callback)
        # total error <= Monte Carlo error + epsilon_r (loose check)
        assert max(errors) <= epsilon_r + 0.15


class TestReoptimization:
    def test_reoptimizes_on_schedule(self, graph, params, workload):
        alg = Agenda(graph.copy(), params)
        model = calibrated_cost_model(alg, num_queries=2, rng=0)
        controller = QuotaController(model)
        system = QuotaSystem(alg, controller, reoptimize_every=1.0)
        system.process(workload)
        # ~3 virtual seconds of workload -> at least 2 reconfigurations
        assert len(system.decisions) >= 2

    def test_static_configuration(self, graph, params):
        alg = Agenda(graph.copy(), params)
        model = calibrated_cost_model(alg, num_queries=2, rng=1)
        controller = QuotaController(model)
        system = QuotaSystem(alg, controller)
        decision = system.configure_static(10.0, 10.0)
        assert decision is not None
        assert alg.get_hyperparameters() == pytest.approx(decision.beta)

    def test_no_controller_no_decisions(self, graph, params, workload):
        system = QuotaSystem(Fora(graph.copy(), params))
        assert system.configure_static(1.0, 1.0) is None
        system.process(workload)
        assert system.decisions == []

    def test_invalid_reoptimize_interval(self, graph, params):
        with pytest.raises(ValueError):
            QuotaSystem(Fora(graph.copy(), params), reoptimize_every=0.0)


class TestRateEstimator:
    def test_rates_from_window(self):
        estimator = RateEstimator(window=10.0)
        for t in np.arange(0.0, 10.0, 0.5):  # 2 queries/sec
            estimator.observe(QUERY, float(t))
        for t in np.arange(0.0, 10.0, 1.0):  # 1 update/sec
            estimator.observe(UPDATE, float(t))
        lq, lu = estimator.rates(10.0)
        assert lq == pytest.approx(2.0, rel=0.2)
        assert lu == pytest.approx(1.0, rel=0.2)

    def test_old_arrivals_evicted(self):
        estimator = RateEstimator(window=5.0)
        estimator.observe(QUERY, 0.0)
        estimator.observe(QUERY, 100.0)
        lq, _ = estimator.rates(100.0)
        assert lq == pytest.approx(1 / 5.0)

    def test_early_window_normalization(self):
        """Before a full window has elapsed, normalize by elapsed time."""
        estimator = RateEstimator(window=10.0)
        estimator.observe(QUERY, 0.5)
        estimator.observe(QUERY, 1.0)
        lq, _ = estimator.rates(1.0)
        assert lq == pytest.approx(2.0)
