"""Tests for the Table I cost models."""

import math

import pytest

from repro.core import (
    COST_MODELS,
    AgendaCostModel,
    ForaCostModel,
    ForaPlusCostModel,
    SpeedPPRCostModel,
    SpeedPPRPlusCostModel,
    TopPPRCostModel,
    cost_model_for,
)
from repro.graph import barabasi_albert_graph
from repro.ppr import ALGORITHMS, PPRParams


class TestAgendaModel:
    def setup_method(self):
        self.model = AgendaCostModel(
            n=1000,
            m=5000,
            taus={
                "Forward Push": 1e-6,
                "Lazy Index Update": 1e-2,
                "Random Walk": 1e-3,
                "Reverse Push": 1e-6,
                "Index Inaccuracy Update": 1e-5,
                "Graph Update": 1e-5,
            },
        )

    def test_query_time_formula(self):
        beta = {"r_max": 1e-3, "r_max_b": 1e-3}
        expected = (
            1e-6 / 1e-3
            + 1e-2 * (2.0) * 1e-3 * (1000 * 1e-3 + 1)
            + 1e-3 * 1e-3
        )
        got = self.model.query_time(beta, lambda_q=10, lambda_u=20)
        assert got == pytest.approx(expected)

    def test_update_time_formula(self):
        beta = {"r_max": 1e-3, "r_max_b": 1e-3}
        expected = 1e-6 / 1e-3 + 1e-5 + 1e-5
        assert self.model.update_time(beta) == pytest.approx(expected)

    def test_lazy_cost_scales_with_update_ratio(self):
        beta = {"r_max": 1e-3, "r_max_b": 1e-3}
        light = self.model.query_time(beta, lambda_q=10, lambda_u=1)
        heavy = self.model.query_time(beta, lambda_q=10, lambda_u=100)
        assert heavy > light

    def test_query_cost_convex_in_r_max(self):
        """1/r + c r has an interior minimum: both extremes are worse."""
        betas = [
            {"r_max": r, "r_max_b": 1e-3} for r in (1e-7, 1e-3, 0.9)
        ]
        times = [self.model.query_time(b, 10, 10) for b in betas]
        assert times[1] < times[0]
        assert times[1] < times[2]

    def test_reverse_push_tradeoff(self):
        """Smaller r_max_b: cheaper queries (tighter bounds), costlier updates."""
        tight = {"r_max": 1e-3, "r_max_b": 1e-5}
        loose = {"r_max": 1e-3, "r_max_b": 1e-1}
        assert self.model.update_time(tight) > self.model.update_time(loose)
        assert self.model.query_time(tight, 10, 10) < self.model.query_time(
            loose, 10, 10
        )


class TestOtherModels:
    def test_fora_constant_update(self):
        model = ForaCostModel(100, 500, taus={"Graph Update": 2e-4})
        assert model.update_time({"r_max": 1e-5}) == pytest.approx(2e-4)
        assert model.update_time({"r_max": 0.5}) == pytest.approx(2e-4)

    def test_fora_plus_update_scales_with_r_max(self):
        model = ForaPlusCostModel(100, 500, taus={"Index Build": 1.0})
        assert model.update_time({"r_max": 0.2}) == pytest.approx(0.2)
        assert model.update_time({"r_max": 0.4}) > model.update_time(
            {"r_max": 0.2}
        )

    def test_speedppr_log_surrogate(self):
        model = SpeedPPRCostModel(100, 1000, taus={"Power Iteration": 1.0,
                                                   "Random Walk": 0.0})
        # log(1 + 1/(r m)) ~ log(1/(r m)) for small r
        small = model.query_time({"r_max": 1e-9}, 1, 1)
        assert small == pytest.approx(math.log(1.0 / (1e-9 * 1000)), rel=1e-3)
        # decays toward zero (not negative) for large r m
        large = model.query_time({"r_max": 0.9}, 1, 1)
        assert 0 < large < 0.01

    def test_speedppr_plus_update(self):
        model = SpeedPPRPlusCostModel(100, 1000, taus={"Index Build": 3.0})
        assert model.update_time({"r_max": 0.1}) == pytest.approx(0.3)

    def test_topppr_three_terms(self):
        model = TopPPRCostModel(
            100, 500,
            taus={"Forward Push": 1.0, "Random Walk": 1.0, "Reverse Push": 1.0},
        )
        got = model.query_time({"r_max": 0.1, "r_max_b": 0.2}, 1, 1)
        assert got == pytest.approx(1 / 0.1 + 0.1 + 1 / 0.2)


class TestModelInfrastructure:
    def test_default_tau_is_one(self):
        model = ForaCostModel(10, 20)
        assert model.tau("Forward Push") == 1.0

    def test_without_constants(self):
        model = ForaCostModel(10, 20, taus={"Forward Push": 5.0})
        ablated = model.without_constants()
        assert ablated.tau("Forward Push") == 1.0
        assert ablated.n == 10

    def test_with_taus_copy(self):
        model = ForaCostModel(10, 20)
        updated = model.with_taus({"Random Walk": 2.0})
        assert updated.tau("Random Walk") == 2.0
        assert model.tau("Random Walk") == 1.0

    def test_beta_dict_roundtrip(self):
        model = AgendaCostModel(10, 20)
        beta = model.beta_dict([0.1, 0.2])
        assert beta == {"r_max": 0.1, "r_max_b": 0.2}

    def test_beta_dict_wrong_size(self):
        with pytest.raises(ValueError):
            AgendaCostModel(10, 20).beta_dict([0.1])

    def test_invalid_graph_stats(self):
        with pytest.raises(ValueError):
            ForaCostModel(0, 10)

    def test_registry_covers_quota_algorithms(self):
        for name in ("Agenda", "FORA", "FORA+", "SpeedPPR", "SpeedPPR+",
                     "FORA-TopK", "TopPPR"):
            assert name in COST_MODELS

    def test_cost_model_for_matches_algorithm(self):
        graph = barabasi_albert_graph(60, attach=2, seed=0)
        params = PPRParams(walk_cap=500)
        for name, cls in ALGORITHMS.items():
            if name == "ResAcc":
                continue  # baseline-only, no model (as in the paper)
            alg = cls(graph.copy(), params)
            model = cost_model_for(alg)
            assert model.algorithm_name == name
            assert model.n == 60

    def test_cost_model_for_unknown_raises(self):
        graph = barabasi_albert_graph(60, attach=2, seed=0)
        alg = ALGORITHMS["ResAcc"](graph, PPRParams(walk_cap=500))
        with pytest.raises(ValueError, match="no cost model"):
            cost_model_for(alg)
