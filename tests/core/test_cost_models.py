"""Tests for the Table I cost models."""

import math

import pytest

from repro.core import (
    COST_MODELS,
    AgendaCostModel,
    BatchAwareCostModel,
    ForaCostModel,
    ForaPlusCostModel,
    SpeedPPRCostModel,
    SpeedPPRPlusCostModel,
    TopPPRCostModel,
    cost_model_for,
)
from repro.core.cost_models import (
    ForaPlusIncrementalCostModel,
    SpeedPPRPlusIncrementalCostModel,
)
from repro.core.quota import QuotaController
from repro.graph import barabasi_albert_graph
from repro.ppr import ALGORITHMS, PPRParams


class TestAgendaModel:
    def setup_method(self):
        self.model = AgendaCostModel(
            n=1000,
            m=5000,
            taus={
                "Forward Push": 1e-6,
                "Lazy Index Update": 1e-2,
                "Random Walk": 1e-3,
                "Reverse Push": 1e-6,
                "Index Inaccuracy Update": 1e-5,
                "Graph Update": 1e-5,
            },
        )

    def test_query_time_formula(self):
        beta = {"r_max": 1e-3, "r_max_b": 1e-3}
        expected = (
            1e-6 / 1e-3
            + 1e-2 * (2.0) * 1e-3 * (1000 * 1e-3 + 1)
            + 1e-3 * 1e-3
        )
        got = self.model.query_time(beta, lambda_q=10, lambda_u=20)
        assert got == pytest.approx(expected)

    def test_update_time_formula(self):
        beta = {"r_max": 1e-3, "r_max_b": 1e-3}
        expected = 1e-6 / 1e-3 + 1e-5 + 1e-5
        assert self.model.update_time(beta) == pytest.approx(expected)

    def test_lazy_cost_scales_with_update_ratio(self):
        beta = {"r_max": 1e-3, "r_max_b": 1e-3}
        light = self.model.query_time(beta, lambda_q=10, lambda_u=1)
        heavy = self.model.query_time(beta, lambda_q=10, lambda_u=100)
        assert heavy > light

    def test_query_cost_convex_in_r_max(self):
        """1/r + c r has an interior minimum: both extremes are worse."""
        betas = [
            {"r_max": r, "r_max_b": 1e-3} for r in (1e-7, 1e-3, 0.9)
        ]
        times = [self.model.query_time(b, 10, 10) for b in betas]
        assert times[1] < times[0]
        assert times[1] < times[2]

    def test_reverse_push_tradeoff(self):
        """Smaller r_max_b: cheaper queries (tighter bounds), costlier updates."""
        tight = {"r_max": 1e-3, "r_max_b": 1e-5}
        loose = {"r_max": 1e-3, "r_max_b": 1e-1}
        assert self.model.update_time(tight) > self.model.update_time(loose)
        assert self.model.query_time(tight, 10, 10) < self.model.query_time(
            loose, 10, 10
        )


class TestOtherModels:
    def test_fora_constant_update(self):
        model = ForaCostModel(100, 500, taus={"Graph Update": 2e-4})
        assert model.update_time({"r_max": 1e-5}) == pytest.approx(2e-4)
        assert model.update_time({"r_max": 0.5}) == pytest.approx(2e-4)

    def test_fora_plus_update_scales_with_r_max(self):
        model = ForaPlusCostModel(100, 500, taus={"Index Build": 1.0})
        assert model.update_time({"r_max": 0.2}) == pytest.approx(0.2)
        assert model.update_time({"r_max": 0.4}) > model.update_time(
            {"r_max": 0.2}
        )

    def test_speedppr_log_surrogate(self):
        model = SpeedPPRCostModel(100, 1000, taus={"Power Iteration": 1.0,
                                                   "Random Walk": 0.0})
        # log(1 + 1/(r m)) ~ log(1/(r m)) for small r
        small = model.query_time({"r_max": 1e-9}, 1, 1)
        assert small == pytest.approx(math.log(1.0 / (1e-9 * 1000)), rel=1e-3)
        # decays toward zero (not negative) for large r m
        large = model.query_time({"r_max": 0.9}, 1, 1)
        assert 0 < large < 0.01

    def test_speedppr_plus_update(self):
        model = SpeedPPRPlusCostModel(100, 1000, taus={"Index Build": 3.0})
        assert model.update_time({"r_max": 0.1}) == pytest.approx(0.3)

    def test_fora_plus_incremental_update_terms(self):
        model = ForaPlusIncrementalCostModel(
            100, 500, taus={"Graph Update": 1e-4, "Index Update": 1e-2}
        )
        assert model.update_time({"r_max": 0.2}) == pytest.approx(
            1e-4 + 1e-2 * 0.2
        )
        # query side is inherited from the FORA+ row unchanged
        plain = ForaPlusCostModel(100, 500)
        assert model.query_factors(
            {"r_max": 0.1}, 1, 1
        ) == plain.query_factors({"r_max": 0.1}, 1, 1)

    def test_speedppr_plus_incremental_update_terms(self):
        model = SpeedPPRPlusIncrementalCostModel(
            100, 1000, taus={"Graph Update": 1e-4, "Index Update": 2e-2}
        )
        assert model.update_time({"r_max": 0.1}) == pytest.approx(
            1e-4 + 2e-2 * 0.1
        )

    def test_quota_flips_to_index_based_under_churn(self):
        """The point of the incremental row: with representative taus
        (incremental maintenance ~100x cheaper than a rebuild), an
        update-heavy rate pair that drives FORA+ unstable leaves
        FORA+inc stable — so an argmin over predicted response times
        now selects an index-based method where it previously could
        not."""
        taus_q = {"Forward Push": 2e-5, "Random Walk": 2e-3}
        rebuild = ForaPlusCostModel(
            5000, 25000, taus={**taus_q, "Index Build": 5.0}
        )
        incremental = ForaPlusIncrementalCostModel(
            5000, 25000,
            taus={**taus_q, "Graph Update": 1e-4, "Index Update": 0.05},
        )
        # update-heavy enough that no r_max keeps rho < 1 for the
        # rebuild row (its rho_min = 2 sqrt(lq tau_fp (lq tau_rw +
        # lu tau_ib)) ~ 2.0) while the incremental row stays ~0.4
        lambda_q, lambda_u = 5.0, 2000.0
        d_rebuild = QuotaController(rebuild).configure(lambda_q, lambda_u)
        d_inc = QuotaController(incremental).configure(lambda_q, lambda_u)
        assert not d_rebuild.is_stable
        assert d_inc.is_stable
        assert (
            d_inc.predicted_response_time
            < d_rebuild.predicted_response_time
        )

    def test_topppr_three_terms(self):
        model = TopPPRCostModel(
            100, 500,
            taus={"Forward Push": 1.0, "Random Walk": 1.0, "Reverse Push": 1.0},
        )
        got = model.query_time({"r_max": 0.1, "r_max_b": 0.2}, 1, 1)
        assert got == pytest.approx(1 / 0.1 + 0.1 + 1 / 0.2)


class TestModelInfrastructure:
    def test_default_tau_is_one(self):
        model = ForaCostModel(10, 20)
        assert model.tau("Forward Push") == 1.0

    def test_without_constants(self):
        model = ForaCostModel(10, 20, taus={"Forward Push": 5.0})
        ablated = model.without_constants()
        assert ablated.tau("Forward Push") == 1.0
        assert ablated.n == 10

    def test_with_taus_copy(self):
        model = ForaCostModel(10, 20)
        updated = model.with_taus({"Random Walk": 2.0})
        assert updated.tau("Random Walk") == 2.0
        assert model.tau("Random Walk") == 1.0

    def test_beta_dict_roundtrip(self):
        model = AgendaCostModel(10, 20)
        beta = model.beta_dict([0.1, 0.2])
        assert beta == {"r_max": 0.1, "r_max_b": 0.2}

    def test_beta_dict_wrong_size(self):
        with pytest.raises(ValueError):
            AgendaCostModel(10, 20).beta_dict([0.1])

    def test_invalid_graph_stats(self):
        with pytest.raises(ValueError):
            ForaCostModel(0, 10)

    def test_registry_covers_quota_algorithms(self):
        for name in ("Agenda", "FORA", "FORA+", "SpeedPPR", "SpeedPPR+",
                     "FORA-TopK", "TopPPR"):
            assert name in COST_MODELS

    def test_cost_model_for_matches_algorithm(self):
        graph = barabasi_albert_graph(60, attach=2, seed=0)
        params = PPRParams(walk_cap=500)
        for name, cls in ALGORITHMS.items():
            if name == "ResAcc":
                continue  # baseline-only, no model (as in the paper)
            alg = cls(graph.copy(), params)
            model = cost_model_for(alg)
            assert model.algorithm_name == name
            assert model.n == 60

    def test_cost_model_for_unknown_raises(self):
        graph = barabasi_albert_graph(60, attach=2, seed=0)
        alg = ALGORITHMS["ResAcc"](graph, PPRParams(walk_cap=500))
        with pytest.raises(ValueError, match="no cost model"):
            cost_model_for(alg)


class TestBatchAwareCostModel:
    def make_inner(self):
        return ForaCostModel(
            n=1000, m=5000,
            taus={
                "Forward Push": 1e-6,
                "Random Walk": 1e-3,
                "Graph Update": 1e-5,
            },
        )

    BETA = {"r_max": 1e-3}

    def test_recovers_inner_at_batch_one(self):
        inner = self.make_inner()
        wrapped = BatchAwareCostModel(inner, shared_fraction=0.7)
        assert wrapped.query_time(self.BETA, 10, 20) == pytest.approx(
            inner.query_time(self.BETA, 10, 20)
        )

    def test_effective_time_formula(self):
        inner = self.make_inner()
        wrapped = BatchAwareCostModel(
            inner, shared_fraction=0.6, batch_size=4.0
        )
        scale = (1.0 - 0.6) + 0.6 / 4.0
        assert wrapped.query_time(self.BETA, 10, 20) == pytest.approx(
            scale * inner.query_time(self.BETA, 10, 20)
        )

    def test_large_batch_limit(self):
        """As B grows only the shared fraction amortizes away."""
        inner = self.make_inner()
        wrapped = BatchAwareCostModel(
            inner, shared_fraction=0.5, batch_size=1e9
        )
        assert wrapped.query_time(self.BETA, 10, 20) == pytest.approx(
            0.5 * inner.query_time(self.BETA, 10, 20), rel=1e-6
        )

    def test_update_time_untouched(self):
        inner = self.make_inner()
        wrapped = BatchAwareCostModel(
            inner, shared_fraction=0.9, batch_size=16.0
        )
        assert wrapped.update_time(self.BETA) == inner.update_time(self.BETA)

    def test_live_batch_size_fn_reread_per_call(self):
        inner = self.make_inner()
        sizes = iter([1.0, 8.0])
        wrapped = BatchAwareCostModel(
            inner, shared_fraction=0.5, batch_size_fn=lambda: next(sizes)
        )
        unbatched = wrapped.query_time(self.BETA, 10, 20)
        batched = wrapped.query_time(self.BETA, 10, 20)
        assert batched < unbatched

    def test_nan_and_sub_one_batch_sizes_clamp(self):
        inner = self.make_inner()
        for bad in (float("nan"), 0.0, 0.5, -3.0):
            wrapped = BatchAwareCostModel(
                inner, shared_fraction=0.5, batch_size_fn=lambda: bad
            )
            assert wrapped.batch_size() == 1.0
            assert wrapped.query_time(self.BETA, 10, 20) == pytest.approx(
                inner.query_time(self.BETA, 10, 20)
            )

    def test_invalid_arguments_rejected(self):
        inner = self.make_inner()
        with pytest.raises(ValueError, match="shared_fraction"):
            BatchAwareCostModel(inner, shared_fraction=1.5)
        with pytest.raises(ValueError, match="batch_size"):
            BatchAwareCostModel(inner, batch_size=0.0)

    def test_mirrors_inner_interface(self):
        wrapped = BatchAwareCostModel(self.make_inner())
        assert wrapped.algorithm_name == "FORA"
        assert wrapped.param_names == ("r_max",)
        assert wrapped.query_subprocesses == ("Forward Push", "Random Walk")
        assert wrapped.query_factors(self.BETA, 10, 20) == (
            self.make_inner().query_factors(self.BETA, 10, 20)
        )

    def test_without_constants_and_with_taus_stay_wrapped(self):
        wrapped = BatchAwareCostModel(
            self.make_inner(), shared_fraction=0.6, batch_size=4.0
        )
        stripped = wrapped.without_constants()
        assert isinstance(stripped, BatchAwareCostModel)
        assert stripped.shared_fraction == 0.6
        retau = wrapped.with_taus(
            {"Forward Push": 2e-6, "Random Walk": 1e-3,
             "Graph Update": 1e-5}
        )
        assert isinstance(retau, BatchAwareCostModel)
        assert retau.query_time(self.BETA, 10, 20) > 0.0

    def test_optimizer_sees_lower_utilization(self):
        """The whole point: a batched t_q_eff lowers rho, so a stable
        configuration exists at rates where the unbatched model
        saturates."""
        from repro.queueing import traffic_intensity

        inner = self.make_inner()
        wrapped = BatchAwareCostModel(
            inner, shared_fraction=0.8, batch_size=8.0
        )
        beta = {"r_max": 1e-4}
        lambda_q, lambda_u = 150.0, 50.0
        t_u = inner.update_time(beta)
        rho_plain = traffic_intensity(
            lambda_q, lambda_u, inner.query_time(beta, lambda_q, lambda_u),
            t_u,
        )
        rho_batched = traffic_intensity(
            lambda_q, lambda_u,
            wrapped.query_time(beta, lambda_q, lambda_u), t_u,
        )
        assert rho_batched < rho_plain
