"""Unit tests for the online loop's hysteresis (rate/beta thresholds)."""

import pytest

from repro.core import QuotaSystem
from repro.graph import barabasi_albert_graph
from repro.ppr import Fora, PPRParams


@pytest.fixture
def system():
    graph = barabasi_albert_graph(60, attach=2, seed=0)
    return QuotaSystem(
        Fora(graph, PPRParams(walk_cap=200)),
        rate_change_threshold=0.15,
        beta_change_threshold=0.10,
    )


class TestRatesMoved:
    def test_small_drift_ignored(self, system):
        system._configured_rates = (10.0, 10.0)
        assert not system._rates_moved(10.5, 10.5)
        assert not system._rates_moved(11.0, 9.0)

    def test_large_drift_detected(self, system):
        system._configured_rates = (10.0, 10.0)
        assert system._rates_moved(12.0, 10.0)
        assert system._rates_moved(10.0, 5.0)

    def test_zero_to_positive_is_movement(self, system):
        system._configured_rates = (10.0, 0.0)
        assert system._rates_moved(10.0, 1.0)
        assert not system._rates_moved(10.0, 0.0)


class TestBetaMoved:
    def test_tiny_change_skipped(self, system):
        assert not system._beta_moved({"r_max": 1e-3}, {"r_max": 1.05e-3})

    def test_material_change_applied(self, system):
        assert system._beta_moved({"r_max": 1e-3}, {"r_max": 2e-3})

    def test_new_parameter_is_movement(self, system):
        assert system._beta_moved({}, {"r_max": 1e-3})

    def test_zero_old_value_is_movement(self, system):
        assert system._beta_moved({"r_max": 0.0}, {"r_max": 1e-3})

    def test_multi_parameter_any_moves(self, system):
        current = {"r_max": 1e-3, "r_max_b": 1e-3}
        proposed = {"r_max": 1.01e-3, "r_max_b": 5e-3}
        assert system._beta_moved(current, proposed)
