"""RateDriftDetector + the QuotaSystem event-driven re-optimization path."""

import pytest

from repro.core.quota import QuotaDecision
from repro.core.system import QuotaSystem, RateDriftDetector
from repro.graph.generators import barabasi_albert_graph
from repro.ppr.base import PPRParams
from repro.ppr.fora import Fora
from repro.queueing.workload import generate_segmented_workload
from repro.queueing.workload import WorkloadSegment


def make_detector(**overrides):
    kwargs = dict(
        configured_q=10.0,
        configured_u=5.0,
        window=5.0,
        threshold=0.5,
        min_events=10,
    )
    kwargs.update(overrides)
    return RateDriftDetector(**kwargs)


def feed(detector, rate_q, t_end, t_start=0.0):
    """Deterministic evenly spaced query arrivals at ``rate_q``."""
    t = t_start
    while t < t_start + t_end:
        detector.observe("query", t)
        t += 1.0 / rate_q
    return t


class TestRateDriftDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_detector(configured_q=-1.0)
        with pytest.raises(ValueError):
            make_detector(threshold=0.0)

    def test_cold_window_never_fires(self):
        detector = make_detector(min_events=50)
        for i in range(40):
            detector.observe("query", i * 0.001)  # huge empirical rate
        assert detector.check(0.05) is None

    def test_on_target_rates_stay_quiet(self):
        # query-only configuration: observed ~10/s vs configured 10/s
        quiet = make_detector(configured_u=0.0)
        t = feed(quiet, 10.0, 6.0)
        assert quiet.check(t) is None

    def test_spike_fires_and_reports_monitored_rates(self):
        detector = make_detector(configured_u=0.0)
        t = feed(detector, 60.0, 2.0)  # 6x the configured 10/s
        drifted = detector.check(t)
        assert drifted is not None
        lambda_q, lambda_u = drifted
        assert lambda_q > 30.0
        assert lambda_u == pytest.approx(0.0)

    def test_rearm_resets_baseline(self):
        detector = make_detector(configured_u=0.0)
        t = feed(detector, 60.0, 2.0)
        drifted = detector.check(t)
        assert drifted is not None
        detector.rearm(*drifted)
        # the same traffic now matches the configuration
        t = feed(detector, 60.0, 2.0, t_start=t)
        assert detector.check(t) is None

    def test_zero_configured_update_rate_drifts_on_any_update(self):
        detector = make_detector(configured_u=0.0, min_events=5)
        for i in range(10):
            detector.observe("query", i * 0.1)
            detector.observe("update", i * 0.1)
        assert detector.check(1.0) is not None


class FakeController:
    """Records configure() calls; returns a fixed no-op decision."""

    def __init__(self, beta):
        self.calls = []
        self._beta = beta

    def configure(self, lambda_q, lambda_u, warm_start=None, quick=False):
        self.calls.append((lambda_q, lambda_u))
        return QuotaDecision(
            beta=dict(self._beta),
            regime="stable",
            predicted_response_time=0.01,
            traffic_intensity=0.5,
            configure_seconds=0.0,
            optimizer_result=None,
        )


class TestQuotaSystemDriftPath:
    def test_drift_triggers_reconfiguration(self):
        graph = barabasi_albert_graph(80, attach=2, seed=5)
        algorithm = Fora(graph, PPRParams(alpha=0.2, epsilon=0.5, walk_cap=16))
        algorithm.seed(0)
        controller = FakeController(algorithm.get_hyperparameters())
        detector = RateDriftDetector(
            configured_q=5.0,
            configured_u=2.0,
            window=4.0,
            threshold=0.5,
            min_events=15,
        )
        system = QuotaSystem(
            algorithm, controller, drift_detector=detector
        )
        # rates 6x the configured pair: the detector must fire
        segments = [WorkloadSegment(6.0, 30.0, 12.0)]
        workload = generate_segmented_workload(graph, segments, rng=3)
        system.process(workload)
        assert controller.calls, "drift never triggered a reconfiguration"
        lambda_q, lambda_u = controller.calls[0]
        assert lambda_q > 15.0
        assert len(system.decisions) == len(controller.calls)

    def test_matching_rates_do_not_reconfigure(self):
        graph = barabasi_albert_graph(80, attach=2, seed=5)
        algorithm = Fora(graph, PPRParams(alpha=0.2, epsilon=0.5, walk_cap=16))
        algorithm.seed(0)
        controller = FakeController(algorithm.get_hyperparameters())
        detector = RateDriftDetector(
            configured_q=10.0,
            configured_u=5.0,
            window=5.0,
            threshold=0.8,
            min_events=15,
        )
        system = QuotaSystem(
            algorithm, controller, drift_detector=detector
        )
        segments = [WorkloadSegment(6.0, 10.0, 5.0)]
        workload = generate_segmented_workload(graph, segments, rng=4)
        system.process(workload)
        assert controller.calls == []
