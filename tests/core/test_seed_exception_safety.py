"""Regression tests for the Issue-3 SeedQueue fixes.

Bug 1: ``flush`` cleared ``_pending``/``_degree_delta`` *before*
applying, so a failing update silently dropped every remaining update
and left the overlay desynced from the graph.  Now each update is
applied before it is popped and the failure propagates.

Bug 2: ``_edge_exists_pending`` scanned the whole pending queue per
``add`` (O(n^2) growth under sustained overload); it is now an O(1)
parity-set lookup.
"""

import pytest

from repro.core import SeedQueue, degree_adjustment_factor
from repro.graph import DynamicGraph, EdgeUpdate
from repro.ppr import Fora, PPRParams

ALPHA = 0.2


def make_graph():
    return DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])


class FlakyApplier:
    """Applies updates to a graph, raising on chosen call numbers."""

    def __init__(self, graph, fail_on=()):
        self.graph = graph
        self.fail_on = set(fail_on)
        self.calls = 0

    def apply_update(self, update):
        self.calls += 1
        if self.calls in self.fail_on:
            raise RuntimeError(f"injected failure on call {self.calls}")
        return update.apply(self.graph)


class TestFlushExceptionSafety:
    def test_failure_propagates(self):
        graph = make_graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))
        with pytest.raises(RuntimeError, match="injected"):
            queue.flush(FlakyApplier(graph, fail_on={1}))

    def test_failing_update_stays_at_head(self):
        graph = make_graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3), arrival=1.0)
        queue.add(EdgeUpdate(3, 4), arrival=2.0)  # will fail
        queue.add(EdgeUpdate(4, 5), arrival=3.0)
        applier = FlakyApplier(graph, fail_on={2})
        with pytest.raises(RuntimeError):
            queue.flush(applier)
        # applied prefix removed, failing update still queued first
        assert graph.has_edge(0, 3)
        assert len(queue) == 2
        head = queue.peek()
        assert (head.update.u, head.update.v) == (3, 4)
        assert head.arrival == 2.0

    def test_overlay_consistent_after_failure(self):
        """The degree overlay must describe exactly the *remaining*
        suffix after a failed flush — not the already-applied prefix."""
        graph = make_graph()  # out_degree(0) == 2
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))  # applies fine -> graph d_out(0)=3
        queue.add(EdgeUpdate(0, 4))  # fails, stays pending (overlay +1)
        applier = FlakyApplier(graph, fail_on={2})
        with pytest.raises(RuntimeError):
            queue.flush(applier)
        # graph d_out(0)=3, pending (0,4) adds 1, new update adds 1 -> 5
        item = queue.add(EdgeUpdate(0, 5))
        assert item.factor == pytest.approx(
            degree_adjustment_factor(ALPHA, 5)
        )

    def test_retry_after_transient_failure_succeeds(self):
        graph = make_graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        for update in (EdgeUpdate(0, 3), EdgeUpdate(3, 4), EdgeUpdate(4, 5)):
            queue.add(update)
        applier = FlakyApplier(graph, fail_on={2})
        with pytest.raises(RuntimeError):
            queue.flush(applier)
        flushed = queue.flush(applier)  # transient: retry works
        assert [f.update.v for f in flushed] == [4, 5]
        assert len(queue) == 0
        assert queue.error_bound(0) == 0.0

    def test_flush_one_failure_keeps_item_queued(self):
        graph = make_graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))
        with pytest.raises(RuntimeError):
            queue.flush_one(FlakyApplier(graph, fail_on={1}))
        assert len(queue) == 1
        assert not graph.has_edge(0, 3)

    def test_discard_one_drops_without_applying(self):
        graph = make_graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))
        queue.add(EdgeUpdate(0, 4))
        dropped = queue.discard_one()
        assert (dropped.update.u, dropped.update.v) == (0, 3)
        assert not graph.has_edge(0, 3)
        assert len(queue) == 1
        # overlay unwound: only (0,4) pending -> next add at 0 sees
        # graph degree 2 + 1 pending + 1 itself = 4
        item = queue.add(EdgeUpdate(0, 5))
        assert item.factor == pytest.approx(
            degree_adjustment_factor(ALPHA, 4)
        )

    def test_discard_one_empty(self):
        queue = SeedQueue(make_graph(), ALPHA, epsilon_r=1.0)
        assert queue.discard_one() is None


class CountingGraph:
    """Proxy counting ``has_edge`` calls (the old hot path of add)."""

    def __init__(self, graph):
        self._graph = graph
        self.has_edge_calls = 0

    def has_edge(self, u, v):
        self.has_edge_calls += 1
        return self._graph.has_edge(u, v)

    def __getattr__(self, name):
        return getattr(self._graph, name)


class TestAddComplexity:
    def test_add_is_amortized_constant(self):
        """Each add makes O(1) graph lookups regardless of queue depth.

        The seed implementation re-scanned the whole pending list per
        add (one ``has_edge`` per pending item); with the parity set,
        the lookup count stays flat as the queue grows.
        """
        graph = CountingGraph(make_graph())
        queue = SeedQueue(graph, ALPHA, epsilon_r=1e9)
        depth = 500
        for i in range(depth):
            queue.add(EdgeUpdate(i % 7, 100 + i))
        # old behaviour: sum over n of O(n) ~ depth^2/2 calls; new: one
        # per add (plus the degree lookup, which goes via __getattr__)
        assert graph.has_edge_calls <= 2 * depth

    def test_parity_tracks_toggles(self):
        """Repeated toggles of one edge alternate insert/delete deltas."""
        graph = make_graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=1e9)
        first = queue.add(EdgeUpdate(0, 9))
        second = queue.add(EdgeUpdate(0, 9))
        third = queue.add(EdgeUpdate(0, 9))
        assert (first.delta, second.delta, third.delta) == (1, -1, 1)

    def test_parity_respects_existing_edges(self):
        graph = make_graph()  # has (0, 1)
        queue = SeedQueue(graph, ALPHA, epsilon_r=1e9)
        first = queue.add(EdgeUpdate(0, 1))   # pending delete
        second = queue.add(EdgeUpdate(0, 1))  # pending re-insert
        assert (first.delta, second.delta) == (-1, 1)

    def test_parity_matches_flush_result(self):
        """Pending-existence answers must equal post-flush reality."""
        graph = make_graph()
        algo = Fora(graph, PPRParams(walk_cap=100))
        queue = SeedQueue(graph, ALPHA, epsilon_r=1e9)
        edges = [(0, 1), (0, 9), (0, 1), (1, 2), (0, 9), (0, 9)]
        for u, v in edges:
            queue.add(EdgeUpdate(u, v))
        predicted = {
            (u, v): queue._edge_exists_pending(u, v)
            for (u, v) in set(edges)
        }
        queue.flush(algo)
        for (u, v), exists in predicted.items():
            assert graph.has_edge(u, v) == exists
