"""Tests for the Quota controller (regime dispatch + optimization)."""

import math

import numpy as np
import pytest

from repro.core import (
    STABLE,
    UNSTABLE,
    AgendaCostModel,
    ForaCostModel,
    ForaPlusCostModel,
    QuotaController,
)
from repro.queueing import expected_response_time


def fora_model(tau_push=1e-5, tau_walk=1e-3, tau_update=1e-4):
    return ForaCostModel(
        1000,
        5000,
        taus={
            "Forward Push": tau_push,
            "Random Walk": tau_walk,
            "Graph Update": tau_update,
        },
    )


class TestStableRegime:
    def test_light_load_is_stable(self):
        controller = QuotaController(fora_model())
        decision = controller.configure(lambda_q=1.0, lambda_u=1.0)
        assert decision.regime == STABLE
        assert decision.traffic_intensity < 1.0
        assert decision.predicted_response_time < math.inf

    def test_beta_in_unit_interval(self):
        controller = QuotaController(fora_model())
        decision = controller.configure(5.0, 5.0)
        for value in decision.beta.values():
            assert 0.0 < value < 1.0

    def test_finds_analytic_optimum_at_zero_load(self):
        """As rates -> 0, Eq. 2 -> t_q; optimal r_max = sqrt(tau1/tau2)."""
        model = fora_model(tau_push=1e-5, tau_walk=1e-3)
        controller = QuotaController(model)
        decision = controller.configure(lambda_q=1e-6, lambda_u=0.0)
        expected = math.sqrt(1e-5 / 1e-3)
        assert decision.beta["r_max"] == pytest.approx(expected, rel=0.05)

    def test_predicted_response_matches_eq2(self):
        model = fora_model()
        controller = QuotaController(model)
        decision = controller.configure(3.0, 2.0)
        t_q, t_u = controller.predicted_times(decision.beta, 3.0, 2.0)
        expected = expected_response_time(3.0, 2.0, t_q, t_u)
        assert decision.predicted_response_time == pytest.approx(
            expected, rel=1e-6
        )

    def test_beats_default_setting(self):
        """The optimized beta never predicts worse than a given default."""
        model = fora_model()
        default = {"r_max": 0.01}
        controller = QuotaController(model, extra_starts=[default])
        decision = controller.configure(4.0, 4.0)
        t_q_d, t_u_d = controller.predicted_times(default, 4.0, 4.0)
        default_r = expected_response_time(4.0, 4.0, t_q_d, t_u_d)
        assert decision.predicted_response_time <= default_r + 1e-9

    def test_update_heavy_shifts_index_based_beta(self):
        """FORA+ update cost is tau * r_max (index rebuild), so an
        update-heavy workload should favor a smaller r_max."""
        model = ForaPlusCostModel(
            1000,
            5000,
            taus={
                "Forward Push": 1e-5,
                "Random Walk": 1e-3,
                "Index Build": 1e-1,
            },
        )
        controller = QuotaController(model)
        light = controller.configure(lambda_q=1.0, lambda_u=0.01)
        heavy = controller.configure(lambda_q=1.0, lambda_u=8.0)
        assert heavy.beta["r_max"] < light.beta["r_max"]

    def test_agenda_two_dimensional(self):
        model = AgendaCostModel(
            1000,
            5000,
            taus={
                "Forward Push": 1e-5,
                "Lazy Index Update": 1e-2,
                "Random Walk": 1e-3,
                "Reverse Push": 1e-6,
                "Index Inaccuracy Update": 1e-5,
                "Graph Update": 1e-5,
            },
        )
        controller = QuotaController(model)
        decision = controller.configure(10.0, 10.0)
        assert set(decision.beta) == {"r_max", "r_max_b"}
        assert decision.regime == STABLE


class TestUnstableRegime:
    def _overloaded_controller(self):
        # update cost has a floor of 0.5 s; lambda_u = 4 -> rho >= 2
        model = fora_model(tau_update=0.5)
        return QuotaController(model)

    def test_detects_unstable(self):
        controller = self._overloaded_controller()
        decision = controller.configure(lambda_q=1.0, lambda_u=4.0)
        assert decision.regime == UNSTABLE
        assert decision.traffic_intensity >= 1.0
        assert decision.predicted_response_time == math.inf

    def test_unstable_minimizes_rho(self):
        """In the unstable regime the chosen beta minimizes query time
        (the only tunable contribution to rho for FORA)."""
        controller = self._overloaded_controller()
        decision = controller.configure(1.0, 4.0)
        # optimal query time at r* = sqrt(tau1/tau2)
        expected_r = math.sqrt(1e-5 / 1e-3)
        assert decision.beta["r_max"] == pytest.approx(expected_r, rel=0.05)


class TestValidation:
    def test_rates_validated(self):
        controller = QuotaController(fora_model())
        with pytest.raises(ValueError):
            controller.configure(0.0, 1.0)
        with pytest.raises(ValueError):
            controller.configure(1.0, -1.0)

    def test_configure_seconds_recorded(self):
        decision = QuotaController(fora_model()).configure(1.0, 1.0)
        assert decision.configure_seconds > 0.0

    def test_is_stable_property(self):
        decision = QuotaController(fora_model()).configure(1.0, 1.0)
        assert decision.is_stable


class TestRobustness:
    def test_deterministic(self):
        controller = QuotaController(fora_model())
        a = controller.configure(2.0, 3.0)
        b = controller.configure(2.0, 3.0)
        assert a.beta == b.beta

    def test_pure_query_stream(self):
        decision = QuotaController(fora_model()).configure(5.0, 0.0)
        assert decision.regime == STABLE

    @pytest.mark.parametrize("rates", [(0.1, 0.1), (10, 1), (1, 10), (100, 100)])
    def test_wide_rate_span(self, rates):
        decision = QuotaController(fora_model()).configure(*rates)
        assert 0 < decision.beta["r_max"] < 1
