"""Controller behaviour across response models and regime boundaries."""

import math

import pytest

from repro.core import ForaPlusCostModel, QuotaController


def model(tau_push=1e-5, tau_walk=1e-3, tau_index=1e-2):
    return ForaPlusCostModel(
        1000,
        5000,
        taus={
            "Forward Push": tau_push,
            "Random Walk": tau_walk,
            "Index Build": tau_index,
        },
    )


class TestRegimeBoundary:
    def test_regime_flips_with_update_rate(self):
        """Sweeping lambda_u across the capacity limit flips regimes."""
        controller = QuotaController(model(tau_index=0.1))
        # t_u >= 0 but scales with r_max; at huge lambda_u even the
        # cheapest beta cannot fit the work into one server-second
        stable = controller.configure(1.0, 1.0)
        assert stable.regime == "stable"
        # the minimum possible rho: at r_max -> 0, t_u -> 0 but t_q -> inf;
        # drive lambda_q high enough that min rho >= 1
        unstable = controller.configure(1e5, 1.0)
        assert unstable.regime == "unstable"
        assert unstable.predicted_response_time == math.inf

    def test_unstable_decision_minimizes_rho_not_eq2(self):
        controller = QuotaController(model())
        decision = controller.configure(1e6, 1e6)
        assert decision.regime == "unstable"
        # the chosen beta yields the smallest achievable rho among probes
        probes = [1e-6, 1e-4, 1e-2, 0.5]
        best_probe = min(
            controller._rho(controller._to_log({"r_max": p}), 1e6, 1e6)
            for p in probes
        )
        assert decision.traffic_intensity <= best_probe * 1.01


class TestWarmStartAndQuick:
    def test_quick_mode_close_to_full(self):
        controller = QuotaController(model())
        full = controller.configure(10.0, 10.0)
        quick = controller.configure(
            10.0, 10.0, warm_start=full.beta, quick=True
        )
        assert quick.beta["r_max"] == pytest.approx(
            full.beta["r_max"], rel=0.2
        )

    def test_quick_without_warm_start_still_valid(self):
        controller = QuotaController(model())
        decision = controller.configure(10.0, 10.0, quick=True)
        assert 0 < decision.beta["r_max"] < 1
        assert decision.regime == "stable"

    def test_quick_mode_is_faster(self):
        controller = QuotaController(model())
        full = controller.configure(10.0, 10.0)
        quick = controller.configure(
            10.0, 10.0, warm_start=full.beta, quick=True
        )
        assert quick.configure_seconds < full.configure_seconds


class TestResponseModelDivergence:
    def test_models_differ_under_asymmetric_variance(self):
        """With very different CV inputs the estimates separate."""
        base = model()
        pk = QuotaController(base, cv_q=3.0, cv_u=0.0, response_model="pk")
        mm1 = QuotaController(base, response_model="mm1")
        lq, lu = 20.0, 20.0
        beta = {"r_max": 1e-3}
        x = pk._to_log(beta)
        r_pk = pk._response_time(x, lq, lu)
        r_mm1 = mm1._response_time(x, lq, lu)
        assert r_pk != pytest.approx(r_mm1, rel=0.01)

    def test_heavy_traffic_with_deterministic_service_below_pk_cv1(self):
        base = model()
        ht = QuotaController(
            base, cv_q=0.0, cv_u=0.0, response_model="heavy-traffic"
        )
        pk = QuotaController(base, cv_q=1.0, cv_u=1.0, response_model="pk")
        beta = {"r_max": 1e-3}
        x = ht._to_log(beta)
        assert ht._response_time(x, 50.0, 50.0) < pk._response_time(
            x, 50.0, 50.0
        )
