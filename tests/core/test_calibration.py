"""Tests for tau calibration."""

import pytest

from repro.core import calibrate_taus, calibrated_cost_model, cost_model_for
from repro.graph import barabasi_albert_graph
from repro.ppr import Agenda, Fora, ForaPlus, PPRParams


@pytest.fixture
def graph():
    return barabasi_albert_graph(150, attach=3, seed=9)


@pytest.fixture
def params():
    return PPRParams(walk_cap=1500)


class TestCalibrateTaus:
    def test_covers_all_subprocesses(self, graph, params):
        alg = Agenda(graph.copy(), params)
        model = cost_model_for(alg)
        taus = calibrate_taus(alg, model, num_queries=3, rng=0)
        expected = set(model.query_subprocesses) | set(model.update_subprocesses)
        assert expected <= set(taus)

    def test_taus_positive(self, graph, params):
        alg = Fora(graph.copy(), params)
        taus = calibrate_taus(alg, num_queries=3, rng=1)
        assert all(v >= 0 for v in taus.values())
        assert taus["Forward Push"] > 0
        assert taus["Graph Update"] > 0

    def test_does_not_mutate_production_state(self, graph, params):
        alg = ForaPlus(graph.copy(), params)
        edges_before = set(alg.graph.edges())
        beta_before = alg.get_hyperparameters()
        calibrate_taus(alg, num_queries=3, rng=2)
        assert set(alg.graph.edges()) == edges_before
        assert alg.get_hyperparameters() == beta_before

    def test_prediction_anchored_at_current_beta(self, graph, params):
        """The calibrated model's t_q at the probe point should be within
        an order of magnitude of a fresh measurement there."""
        import time

        alg = Fora(graph.copy(), params)
        alg.seed(0)
        model = calibrated_cost_model(alg, num_queries=5, rng=3)
        predicted = model.query_time(alg.get_hyperparameters(), 1.0, 1.0)

        start = time.perf_counter()
        runs = 5
        for i in range(runs):
            alg.query(i)
        measured = (time.perf_counter() - start) / runs
        assert predicted == pytest.approx(measured, rel=3.0)

    def test_zero_updates_skips_update_taus(self, graph, params):
        alg = Fora(graph.copy(), params)
        taus = calibrate_taus(alg, num_queries=2, updates_per_query=0, rng=4)
        assert "Graph Update" not in taus
        assert "Forward Push" in taus

    def test_validation(self, graph, params):
        alg = Fora(graph.copy(), params)
        with pytest.raises(ValueError):
            calibrate_taus(alg, num_queries=0)
        with pytest.raises(ValueError):
            calibrate_taus(alg, updates_per_query=-1)
        with pytest.raises(ValueError):
            calibrate_taus(alg, probe_scales=())


class TestCalibratedCostModel:
    def test_returns_matching_model(self, graph, params):
        alg = Agenda(graph.copy(), params)
        model = calibrated_cost_model(alg, num_queries=2, rng=5)
        assert model.algorithm_name == "Agenda"
        assert model.taus  # non-empty

    def test_single_probe_scale(self, graph, params):
        alg = Fora(graph.copy(), params)
        model = calibrated_cost_model(
            alg, num_queries=2, probe_scales=(1.0,), rng=6
        )
        assert model.taus["Forward Push"] > 0
