"""Tests for the Seed reordering queue (Lemma 2 bookkeeping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SeedQueue, degree_adjustment_factor, source_excess
from repro.graph import DynamicGraph, EdgeUpdate, barabasi_albert_graph
from repro.ppr import Fora, PPRParams, ppr_exact

ALPHA = 0.2


class TestLemma2Pieces:
    def test_factor_decreases_with_degree(self):
        assert degree_adjustment_factor(ALPHA, 1) > degree_adjustment_factor(
            ALPHA, 10
        )

    def test_factor_formula(self):
        expected = (1 - ALPHA * (1 - ALPHA)) / (ALPHA**2 * 4)
        assert degree_adjustment_factor(ALPHA, 4) == pytest.approx(expected)

    def test_factor_dangling_clamped(self):
        assert degree_adjustment_factor(ALPHA, 0) == degree_adjustment_factor(
            ALPHA, 1
        )

    def test_factor_invalid_alpha(self):
        with pytest.raises(ValueError):
            degree_adjustment_factor(0.0, 3)

    def test_source_excess_range(self):
        for d in (1, 2, 5, 100):
            excess = source_excess(ALPHA, d)
            assert 0.0 <= excess <= 1.0 - ALPHA + 1e-12

    def test_source_excess_degree_one(self):
        # e(G, s) = 1 for d = 1, so excess = 1 - alpha
        assert source_excess(ALPHA, 1) == pytest.approx(1.0 - ALPHA)

    def test_lemma2_bounds_true_ppr_shift(self):
        """One edge update shifts PPR by at most the Lemma 2 bound."""
        rng = np.random.default_rng(0)
        graph = barabasi_albert_graph(60, attach=2, seed=4)
        for trial in range(10):
            u, v = rng.choice(60, size=2, replace=False)
            update = EdgeUpdate(int(u), int(v))
            after = graph.copy()
            resolved = update.apply(after)
            d_after = max(after.out_degree(resolved.u), 1)
            for s in rng.choice(60, size=3, replace=False):
                s = int(s)
                bound = source_excess(
                    ALPHA, graph.out_degree(s)
                ) * degree_adjustment_factor(ALPHA, d_after)
                before_pi = ppr_exact(graph, s, alpha=ALPHA)
                after_pi = ppr_exact(after, s, alpha=ALPHA)
                shift = max(
                    abs(after_pi[t] - before_pi[t]) for t in range(60)
                )
                assert shift <= bound + 1e-9


class TestSeedQueue:
    def _graph(self):
        return DynamicGraph.from_edges(
            [(0, 1), (1, 2), (2, 0), (0, 2), (2, 1)]
        )

    def test_empty_queue_zero_bound(self):
        queue = SeedQueue(self._graph(), ALPHA, epsilon_r=0.5)
        assert len(queue) == 0
        assert queue.error_bound(0) == 0.0
        assert not queue.should_flush(0)

    def test_add_accumulates_bound(self):
        queue = SeedQueue(self._graph(), ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 1), arrival=1.0)
        first = queue.error_bound(2)
        queue.add(EdgeUpdate(1, 0), arrival=2.0)
        assert queue.error_bound(2) > first

    def test_epsilon_zero_always_flushes(self):
        queue = SeedQueue(self._graph(), ALPHA, epsilon_r=0.0)
        queue.add(EdgeUpdate(0, 1))
        assert queue.should_flush(2)

    def test_threshold_controls_flush(self):
        graph = self._graph()
        strict = SeedQueue(graph, ALPHA, epsilon_r=1e-9)
        relaxed = SeedQueue(graph, ALPHA, epsilon_r=100.0)
        strict.add(EdgeUpdate(0, 1))
        relaxed.add(EdgeUpdate(0, 1))
        assert strict.should_flush(2)
        assert not relaxed.should_flush(2)

    def test_pending_degree_overlay(self):
        """The factor must use the post-update degree without mutating
        the live graph."""
        graph = self._graph()  # out_degree(0) == 2
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        item1 = queue.add(EdgeUpdate(0, 3))  # insert -> d_out(0) becomes 3
        assert graph.out_degree(0) == 2  # untouched
        assert item1.factor == pytest.approx(
            degree_adjustment_factor(ALPHA, 3)
        )
        item2 = queue.add(EdgeUpdate(0, 4))  # second insert -> degree 4
        assert item2.factor == pytest.approx(
            degree_adjustment_factor(ALPHA, 4)
        )

    def test_pending_toggle_of_same_edge(self):
        """Insert then delete of the same pending edge nets out."""
        graph = self._graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))  # would insert
        item = queue.add(EdgeUpdate(0, 3))  # pending state -> delete
        assert item.factor == pytest.approx(
            degree_adjustment_factor(ALPHA, 2)
        )

    def test_flush_applies_in_arrival_order(self):
        graph = self._graph()
        params = PPRParams(walk_cap=100)
        alg = Fora(graph, params)
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3), arrival=1.0)
        queue.add(EdgeUpdate(3, 4), arrival=2.0)
        flushed = queue.flush(alg)
        assert [f.arrival for f in flushed] == [1.0, 2.0]
        assert graph.has_edge(0, 3)
        assert graph.has_edge(3, 4)
        assert len(queue) == 0
        assert queue.error_bound(0) == 0.0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            SeedQueue(self._graph(), ALPHA, epsilon_r=-0.1)


# ----------------------------------------------------------------------
# Property: the accumulated bound equals the sum of per-update bounds
# and is monotone in queue length.
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    updates=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
            lambda t: t[0] != t[1]
        ),
        min_size=1,
        max_size=15,
    )
)
def test_error_bound_is_sum_of_factors(updates):
    graph = barabasi_albert_graph(10, attach=2, seed=3)
    queue = SeedQueue(graph, ALPHA, epsilon_r=1.0)
    factors = []
    for u, v in updates:
        item = queue.add(EdgeUpdate(u, v))
        factors.append(item.factor)
        source = 0
        expected = source_excess(ALPHA, queue._pending_out_degree(source)) * sum(
            factors
        )
        assert queue.error_bound(source) == pytest.approx(expected)
