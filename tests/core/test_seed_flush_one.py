"""Tests for SeedQueue.flush_one (idle-time draining) and the degree
overlay unwinding it requires."""

import pytest

from repro.core import SeedQueue, degree_adjustment_factor
from repro.graph import DynamicGraph, EdgeUpdate
from repro.ppr import Fora, PPRParams

ALPHA = 0.2


def make_graph():
    return DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])


def make_algorithm(graph):
    return Fora(graph, PPRParams(walk_cap=100))


class TestFlushOne:
    def test_flushes_oldest_first(self):
        graph = make_graph()
        alg = make_algorithm(graph)
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3), arrival=1.0)
        queue.add(EdgeUpdate(3, 4), arrival=2.0)
        first = queue.flush_one(alg)
        assert first.arrival == 1.0
        assert graph.has_edge(0, 3)
        assert not graph.has_edge(3, 4)
        assert len(queue) == 1

    def test_empty_queue_returns_none(self):
        graph = make_graph()
        queue = SeedQueue(graph, ALPHA, epsilon_r=1.0)
        assert queue.flush_one(make_algorithm(graph)) is None

    def test_degree_overlay_unwound(self):
        """After draining one pending insert at u, a new pending update
        at u must see the *graph* degree (now including the applied
        edge) rather than a double-counted overlay."""
        graph = make_graph()  # out_degree(0) == 2
        alg = make_algorithm(graph)
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))  # overlay: d_out(0) -> 3
        queue.flush_one(alg)         # applied: graph d_out(0) == 3
        item = queue.add(EdgeUpdate(0, 4))  # should see 3 + 1 = 4
        assert item.factor == pytest.approx(
            degree_adjustment_factor(ALPHA, 4)
        )

    def test_partial_drain_keeps_remaining_overlay(self):
        graph = make_graph()
        alg = make_algorithm(graph)
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))  # insert #1 at node 0
        queue.add(EdgeUpdate(0, 4))  # insert #2 at node 0 (overlay d=4)
        queue.flush_one(alg)         # apply insert #1
        # overlay for the remaining pending insert must persist: a new
        # update at 0 sees graph degree 3 + remaining overlay 1 + 1 = 5
        item = queue.add(EdgeUpdate(0, 5))
        assert item.factor == pytest.approx(
            degree_adjustment_factor(ALPHA, 5)
        )

    def test_drain_then_error_bound_consistent(self):
        graph = make_graph()
        alg = make_algorithm(graph)
        queue = SeedQueue(graph, ALPHA, epsilon_r=10.0)
        queue.add(EdgeUpdate(0, 3))
        queue.add(EdgeUpdate(1, 3))
        bound_two = queue.error_bound(2)
        queue.flush_one(alg)
        bound_one = queue.error_bound(2)
        assert 0.0 < bound_one < bound_two

    def test_full_drain_equals_flush(self):
        """Draining one-by-one reaches the same graph state as flush."""
        updates = [EdgeUpdate(0, 3), EdgeUpdate(3, 1), EdgeUpdate(0, 3)]
        g1, g2 = make_graph(), make_graph()
        a1, a2 = make_algorithm(g1), make_algorithm(g2)
        q1 = SeedQueue(g1, ALPHA, epsilon_r=10.0)
        q2 = SeedQueue(g2, ALPHA, epsilon_r=10.0)
        for u in updates:
            q1.add(u)
            q2.add(u)
        while q1.flush_one(a1) is not None:
            pass
        q2.flush(a2)
        assert set(g1.edges()) == set(g2.edges())
