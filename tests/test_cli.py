"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.ppr.dispatch import ENGINE_CHOICES
from repro.ppr.kernels import ENGINES


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "dblp"
        assert args.algorithm == "Agenda"
        assert not args.quota

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "PageRank9000"])

    def test_configure_requires_rates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["configure"])

    def test_engine_default_is_auto(self):
        """The dispatcher routes by default; static engines override."""
        assert build_parser().parse_args(["run"]).engine == "auto"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "simd"])


class TestEngineGuard:
    """Keep the CLI's engine choices and the kernel registry in sync,
    and the scalar oracle path importable — the vectorized kernels are
    only trustworthy while the reference they're tested against exists.
    """

    def test_cli_choices_match_kernel_registry(self):
        run_parser = None
        for action in build_parser()._subparsers._group_actions:
            run_parser = action.choices.get("run")
        assert run_parser is not None
        engine_action = next(
            a for a in run_parser._actions if a.dest == "engine"
        )
        assert tuple(engine_action.choices) == ENGINE_CHOICES
        assert ENGINE_CHOICES == ("auto",) + ENGINES

    def test_scalar_is_registered_first(self):
        """The oracle engine must exist and be the default."""
        assert ENGINES[0] == "scalar"

    def test_oracle_path_importable(self):
        from repro.ppr.forward_push import forward_push
        from repro.ppr.kernels import reference_frontier_push, resolve_engine

        assert callable(forward_push)
        assert callable(reference_frontier_push)
        assert resolve_engine("scalar") == "scalar"
        with pytest.raises(ValueError):
            resolve_engine("not-an-engine")


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("webs", "dblp", "pokec", "lj", "orkut", "twitter"):
            assert name in out

    def test_calibrate(self, capsys):
        code = main(
            ["calibrate", "--dataset", "webs", "--algorithm", "FORA",
             "--queries", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Forward Push" in out
        assert "Graph Update" in out

    def test_configure(self, capsys):
        code = main(
            ["configure", "--dataset", "webs", "--algorithm", "FORA",
             "--lambda-q", "10", "--lambda-u", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "regime:" in out
        assert "r_max" in out

    def test_run_baseline_only(self, capsys):
        code = main(
            ["run", "--dataset", "webs", "--algorithm", "FORA",
             "--lambda-q", "20", "--lambda-u", "10", "--window", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FORA (default)" in out
        assert "mean R (ms)" in out

    def test_run_with_quota_comparison(self, capsys):
        code = main(
            ["run", "--dataset", "webs", "--algorithm", "FORA", "--quota",
             "--lambda-q", "20", "--lambda-u", "10", "--window", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Quota-FORA" in out
        assert "response-time reduction" in out

    def test_unknown_dataset_exits_cleanly(self, capsys):
        code = main(["run", "--dataset", "friendster"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_exits_cleanly(self, capsys):
        code = main(
            ["run", "--dataset", "webs", "--trace", "/no/such/file.csv"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_run_save_and_replay_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        assert main(
            ["run", "--dataset", "webs", "--algorithm", "FORA",
             "--lambda-q", "20", "--lambda-u", "10", "--window", "1",
             "--save-trace", str(trace)]
        ) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(
            ["run", "--dataset", "webs", "--algorithm", "FORA",
             "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "queries" in out
