"""Execute the doctest examples embedded in module/class docstrings,
so the documentation cannot silently rot."""

import doctest

import pytest

import repro
import repro.graph.digraph


@pytest.mark.parametrize(
    "module",
    [repro.graph.digraph, repro],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "expected at least one doctest"
