"""Bit-for-bit equivalence oracle: sharded fleet vs single runtime.

The fabric's correctness claim is that sharding is *transparent*: a
query answered by a worker process at fabric version ``v`` must equal
the answer a single :class:`~repro.serving.ServingRuntime` gives at
the same version.  With ``query_mode="exact"`` both sides execute the
same pure power-iteration function of (graph snapshot, source), so the
comparison is exact float equality — zero tolerance, any divergence
(lost update, torn version, mis-replicated edge) fails the assert.

Both sides replay the same interleaved query/update schedule with a
drain barrier after each update, so every answer is attributable to
one exact graph version.  Marked ``stress``: the sharded side spawns
real worker processes.
"""

import time

import pytest

from repro.evaluation.runner import build_algorithm
from repro.graph import DynamicGraph, EdgeUpdate
from repro.obs import MetricsRegistry
from repro.queueing.workload import QUERY, UPDATE, Request
from repro.serving import ServingRuntime
from repro.shard import ShardManager, ShardSpec
from repro.shard.worker import (
    _exact_query_fn,
    build_graph,
    serialize_result,
)

WALK_CAP = 64
NUM_NODES = 30
ROUNDS = 5
SOURCES = (0, 3, 7, 11, 18, 25)
UPDATES = ((0, 9), (3, 14), (7, 21), (11, 2), (18, 5))


def base_graph():
    edges = [(u, (u + 1) % NUM_NODES) for u in range(NUM_NODES)]
    edges += [(u, (u + 7) % NUM_NODES) for u in range(0, NUM_NODES, 2)]
    return DynamicGraph.from_edges(sorted(set(edges)))


def wait_until(predicate, timeout_s=60.0, interval_s=0.002):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(interval_s)
    return True


def reference_answers(spec_edges, num_nodes):
    """Replay the schedule through ONE ServingRuntime, exact executor.

    Returns ``{(graph_version, source): serialized_values}`` — the
    ground truth the sharded fleet must reproduce bit-for-bit.  The
    graph is built exactly the way a worker builds its replica
    (:func:`build_graph` on the same sorted edge tuple), so the version
    counters line up too.
    """
    spec = ShardSpec(
        shard_id=0,
        num_shards=1,
        num_nodes=num_nodes,
        edges=spec_edges,
        walk_cap=WALK_CAP,
        query_mode="exact",
    )
    graph = build_graph(spec)
    algorithm = build_algorithm("FORA", graph, WALK_CAP, seed=0)
    records = []
    runtime = ServingRuntime(
        algorithm,
        workers=1,
        queue_capacity=256,
        query_fn=_exact_query_fn(algorithm.params.alpha),
        on_complete=records.append,
        metrics=MetricsRegistry(),
    )
    expected = {}
    with runtime:
        for round_index in range(ROUNDS):
            for source in SOURCES:
                done = len(records)
                assert runtime.submit(
                    Request(time.perf_counter(), QUERY, source=source)
                )
                assert wait_until(lambda: len(records) > done)
                record = records[-1]
                assert record.status == "ok", record
                expected[(record.version, source)] = serialize_result(
                    record.result, None
                )
            if round_index < len(UPDATES):
                done = len(records)
                u, v = UPDATES[round_index]
                assert runtime.submit(
                    Request(
                        time.perf_counter(), UPDATE, update=EdgeUpdate(u, v)
                    )
                )
                # epsilon_r=0: the record is emitted at apply time, so
                # this barrier means the graph moved to the new version
                assert wait_until(lambda: len(records) > done)
                assert records[-1].status == "ok", records[-1]
    return expected


@pytest.mark.stress
@pytest.mark.parametrize("num_shards", [2, 3])
def test_sharded_fleet_matches_single_runtime(num_shards):
    graph = base_graph()
    spec_edges = tuple(sorted(graph.edges()))
    expected = reference_answers(spec_edges, NUM_NODES)

    observed = {}
    manager = ShardManager(
        graph,
        num_shards,
        backend="process",
        walk_cap=WALK_CAP,
        query_mode="exact",
        metrics=MetricsRegistry(),
    )
    try:
        for round_index in range(ROUNDS):
            for source in SOURCES:
                outcome = manager.query_sync(source, timeout_s=120.0)
                assert outcome.ok, outcome
                observed[(outcome.version, source)] = outcome.values
            if round_index < len(UPDATES):
                u, v = UPDATES[round_index]
                result = manager.update(u, v)
                assert len(result.acked_shards) == num_shards
                # barrier: every worker has APPLIED (not just admitted)
                # this version before the next round's queries, so each
                # answer is attributable to exactly one graph version
                target = result.version

                def converged():
                    health = manager.healthz()
                    return all(
                        shard["applied_broadcasts"] == target
                        and shard["pending_updates"] == 0
                        and shard["queue_depth"] == 0
                        for shard in health["shards"]
                    )

                assert wait_until(converged)
        counters = manager.metrics.snapshot()["counters"]
        assert counters.get("shard.order_faults", 0) == 0
    finally:
        manager.stop()

    # ZERO violations tolerated: same versions answered, and every
    # (version, source) cell bit-for-bit equal to the single runtime
    assert set(observed) == set(expected)
    mismatches = [
        key for key in expected if observed[key] != expected[key]
    ]
    assert mismatches == [], f"equivalence violated at {mismatches}"
