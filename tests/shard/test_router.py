"""Source-id routers: total coverage, determinism, range contiguity."""

import pytest

from repro.shard import HashRouter, RangeRouter, make_router


def test_hash_router_covers_every_source():
    router = HashRouter(num_shards=4)
    seen = set()
    for source in range(1000):
        shard = router.route(source)
        assert 0 <= shard < 4
        seen.add(shard)
    assert seen == {0, 1, 2, 3}  # no shard starved on a dense id space


def test_hash_router_is_deterministic():
    a, b = HashRouter(num_shards=8), HashRouter(num_shards=8)
    assert [a.route(s) for s in range(500)] == [
        b.route(s) for s in range(500)
    ]


def test_range_router_contiguous_partitions():
    router = RangeRouter(num_shards=3, num_nodes=100)
    assignments = [router.route(s) for s in range(100)]
    # contiguous: shard ids are non-decreasing over the source axis
    assert assignments == sorted(assignments)
    assert set(assignments) == {0, 1, 2}


def test_range_router_single_shard():
    router = RangeRouter(num_shards=1, num_nodes=7)
    assert {router.route(s) for s in range(7)} == {0}


def test_make_router():
    assert isinstance(make_router("hash", 2, 10), HashRouter)
    assert isinstance(make_router("range", 2, 10), RangeRouter)
    with pytest.raises(ValueError):
        make_router("nope", 2, 10)
