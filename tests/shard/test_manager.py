"""ShardManager control plane: routing, admission, health, respawn.

Everything here runs on the deterministic in-process backend; the
cross-process paths are covered by the stress-marked equivalence
oracle in ``test_equivalence.py`` and the smoke in the bench.
"""

import time

import pytest

from repro.graph import DynamicGraph
from repro.obs import MetricsRegistry
from repro.shard import ShardManager
from repro.shard.manager import RETRY_AFTER_UNHEALTHY_S


def ring_graph(n=24):
    edges = [(u, (u + 1) % n) for u in range(n)]
    edges += [(u, (u + 5) % n) for u in range(0, n, 3)]
    return DynamicGraph.from_edges(sorted(set(edges)))


def make_manager(num_shards=2, **overrides):
    options = dict(
        backend="inproc",
        walk_cap=64,
        query_mode="exact",
        metrics=MetricsRegistry(),
    )
    options.update(overrides)
    return ShardManager(ring_graph(), num_shards, **options)


def wait_until(predicate, timeout_s=30.0, interval_s=0.005):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(interval_s)
    return True


def test_query_routes_to_owner_and_serves():
    with make_manager() as manager:
        for source in range(8):
            outcome = manager.query_sync(source, timeout_s=60.0)
            assert outcome.ok, outcome
            assert outcome.shard_id == manager.router.route(source)
            assert outcome.values, "full vector expected"
            # the source holds the largest mass in its own PPR vector
            top_node = max(outcome.values, key=lambda pair: pair[1])[0]
            assert top_node == source


def test_top_k_truncation():
    with make_manager(num_shards=1) as manager:
        outcome = manager.query_sync(0, top_k=3, timeout_s=60.0)
        assert outcome.ok
        assert len(outcome.values) == 3
        scores = [value for _, value in outcome.values]
        assert scores == sorted(scores, reverse=True)


def test_negative_source_rejected():
    with make_manager(num_shards=1) as manager:
        with pytest.raises(ValueError):
            manager.query(-1)


def test_update_broadcast_reaches_every_shard():
    with make_manager(num_shards=3) as manager:
        first = manager.update(0, 7)
        second = manager.update(1, 8)
        assert (first.version, second.version) == (1, 2)
        assert first.acked_shards == (0, 1, 2)
        assert not first.skipped_shards
        assert manager.fabric_version == 2
        health = manager.healthz()
        assert health["healthy"]
        assert all(
            shard["applied_broadcasts"] == 2 for shard in health["shards"]
        )


def test_unhealthy_shard_sheds_with_retry_hint():
    with make_manager(num_shards=2, auto_respawn=False) as manager:
        victim = manager.shard_handle(0)
        victim.crash()
        assert wait_until(lambda: not victim.healthy)
        # a source owned by the dead shard sheds with the respawn hint
        shed_source = next(
            s for s in range(24) if manager.router.route(s) == 0
        )
        outcome = manager.query_sync(shed_source, timeout_s=60.0)
        assert outcome.status == "shed"
        assert outcome.shed_reason == "shard-unhealthy"
        assert outcome.retry_after_s == RETRY_AFTER_UNHEALTHY_S
        # the surviving shard keeps serving its own range
        live_source = next(
            s for s in range(24) if manager.router.route(s) == 1
        )
        assert manager.query_sync(live_source, timeout_s=60.0).ok
        health = manager.healthz()
        assert not health["healthy"]
        assert health["healthy_shards"] == 1
        # updates keep flowing to the healthy shard, dead one skipped
        outcome = manager.update(0, 9)
        assert outcome.acked_shards == (1,)
        assert outcome.skipped_shards == (0,)


def test_crash_then_respawn_replays_log():
    metrics = MetricsRegistry()
    with make_manager(num_shards=2, metrics=metrics) as manager:
        manager.update(0, 7)
        manager.update(2, 9)
        victim = manager.shard_handle(1)
        victim.crash()
        assert wait_until(lambda: not victim.healthy)
        assert wait_until(lambda: manager.healthy_shard_count() == 2)
        health = manager.healthz()
        assert health["healthy"]
        assert all(
            shard["applied_broadcasts"] == 2 for shard in health["shards"]
        )
        # the respawned owner serves its range again
        source = next(s for s in range(24) if manager.router.route(s) == 1)
        assert manager.query_sync(source, timeout_s=60.0).ok
        counters = metrics.snapshot()["counters"]
        assert counters["shard.respawns"] == 1
        assert counters.get("shard.order_faults", 0) == 0


def test_inflight_bound_sheds_and_recovers():
    with make_manager(
        num_shards=1, max_inflight_per_shard=2, auto_respawn=False
    ) as manager:
        handle = manager.shard_handle(0)
        handle.pause()  # deterministic backlog: nothing completes
        admitted = [manager.query(0), manager.query(1)]
        shed = manager.query_sync(2, timeout_s=60.0)
        assert shed.status == "shed"
        assert shed.shed_reason == "inflight-full"
        assert shed.retry_after_s is not None
        assert shed.retry_after_s > 0
        handle.resume()
        for future in admitted:
            assert future.result(60.0).ok
        # the window drained; admission works again
        assert manager.query_sync(3, timeout_s=60.0).ok


def test_metrics_snapshot_aggregates_workers():
    with make_manager(num_shards=2) as manager:
        manager.query_sync(0, timeout_s=60.0)
        manager.update(0, 7)
        snapshot = manager.metrics_snapshot()
        counters = snapshot["manager"]["counters"]
        assert counters["shard.queries_routed"] == 1
        assert counters["shard.updates_broadcast"] == 1
        assert set(snapshot["shards"]) == {"0", "1"}
        for payload in snapshot["shards"].values():
            assert "metrics" in payload
            assert payload["state"]["applied_broadcasts"] == 1


def test_stop_is_terminal():
    manager = make_manager(num_shards=1)
    manager.stop()
    with pytest.raises(RuntimeError):
        manager.update(0, 7)
