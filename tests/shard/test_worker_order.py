"""Update-broadcast ordering contract (regression for satellite #3).

A shard that observes a gap or reordering in the versioned broadcast
sequence must refuse the update and die — :class:`UpdateOrderError` —
rather than apply it and silently diverge from the fleet.  These tests
inject protocol-violating versions straight through the handle layer
(``submit`` exposes the raw command builder for exactly this) and
assert the full failure path: error reply, worker death with an
order-fault reason, manager-side fault counter, and a log-replay
respawn that converges the replacement.
"""

import time

import pytest

from repro.graph import DynamicGraph
from repro.obs import MetricsRegistry
from repro.shard import InprocShard, ShardManager, ShardSpec
from repro.shard.messages import UpdateCommand


def ring_graph(n=24):
    return DynamicGraph.from_edges([(u, (u + 1) % n) for u in range(n)])


def make_spec(graph, **overrides):
    defaults = dict(
        shard_id=0,
        num_shards=1,
        num_nodes=graph.num_nodes,
        edges=tuple(sorted(graph.edges())),
        walk_cap=64,
        queue_capacity=64,
    )
    defaults.update(overrides)
    return ShardSpec(**defaults)


def wait_until(predicate, timeout_s=30.0, interval_s=0.005):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(interval_s)
    return True


def inject_update(handle, version, u=0, v=2):
    return handle.submit(
        lambda rid: UpdateCommand(rid, version, u, v, "toggle")
    )


def test_in_order_updates_are_accepted():
    handle = InprocShard(make_spec(ring_graph()))
    try:
        for version in (1, 2, 3):
            reply = inject_update(handle, version, u=0, v=2 + version).result(
                30.0
            )
            assert reply.ok
            assert reply.payload["version"] == version
        assert handle.server.applied_broadcasts == 3
        assert handle.healthy
    finally:
        handle.stop()


def test_version_gap_refused_and_worker_dies():
    handle = InprocShard(make_spec(ring_graph()))
    try:
        assert inject_update(handle, 1).result(30.0).ok
        # versions 2..4 never arrive; 5 is a gap
        reply = inject_update(handle, 5, v=3).result(30.0)
        assert not reply.ok
        assert "order" in reply.error.lower()
        assert wait_until(lambda: not handle.healthy)
        assert "order" in handle.death_reason.lower()
        # the diverging update must NOT have been applied
        assert handle.server.applied_broadcasts == 1
    finally:
        handle.kill()


def test_duplicate_version_refused():
    handle = InprocShard(make_spec(ring_graph()))
    try:
        assert inject_update(handle, 1).result(30.0).ok
        reply = inject_update(handle, 1, v=3).result(30.0)
        assert not reply.ok
        assert wait_until(lambda: not handle.healthy)
    finally:
        handle.kill()


@pytest.mark.parametrize("auto_respawn", [False, True])
def test_manager_counts_order_faults_and_respawns(auto_respawn):
    metrics = MetricsRegistry()
    manager = ShardManager(
        ring_graph(),
        1,
        backend="inproc",
        walk_cap=64,
        auto_respawn=auto_respawn,
        metrics=metrics,
    )
    try:
        manager.update(0, 2)
        assert manager.fabric_version == 1
        handle = manager.shard_handle(0)
        inject_update(handle, 7, v=5).result(30.0)
        assert wait_until(lambda: not handle.healthy)
        assert metrics.snapshot()["counters"]["shard.order_faults"] == 1
        if auto_respawn:
            # replacement replays the log and rejoins at fleet version
            assert wait_until(lambda: manager.healthy_shard_count() == 1)
            health = manager.healthz()
            assert health["healthy"]
            assert health["shards"][0]["applied_broadcasts"] == 1
        else:
            assert manager.healthy_shard_count() == 0
    finally:
        manager.stop()
