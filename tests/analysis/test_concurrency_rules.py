"""Positive + negative tests for the concurrency rules R7-R11.

Every rule gets fixture code with an injected violation asserted at
the right file:line, plus a clean variant that must not flag.  The
cross-function snapshot-escape case additionally proves the
interprocedural pass catches what the per-function R3 cannot.
"""

import textwrap

import repro.analysis  # noqa: F401  (registers both rule packs)
from repro.analysis import LintConfig, run_source
from repro.analysis.project import run_project_sources

UNSCOPED = LintConfig(restrict_scopes=False)


def lint_project(rule_ids=None, **sources):
    return run_project_sources(
        {
            f"{name}.py": textwrap.dedent(source)
            for name, source in sources.items()
        },
        UNSCOPED,
        rule_ids=rule_ids,
    )


def locations(findings):
    return [(f.rule_id, f.path, f.line) for f in findings]


class TestR7LockOrder:
    def test_read_write_upgrade_flagged(self):
        findings = lint_project(
            ["R7"],
            mod="""
            class R:
                def f(self):
                    with self._rwlock.read_locked():
                        with self._rwlock.write_locked():
                            pass
            """,
        )
        assert locations(findings) == [("R7", "mod.py", 5)]
        assert "upgrade" in findings[0].message

    def test_recursive_read_flagged(self):
        findings = lint_project(
            ["R7"],
            mod="""
            class R:
                def f(self):
                    with self._rwlock.read_locked():
                        with self._rwlock.read_locked():
                            pass
            """,
        )
        assert locations(findings) == [("R7", "mod.py", 5)]
        assert "recursive read" in findings[0].message

    def test_interprocedural_upgrade_flagged(self):
        # the acquisition and the held context live in different
        # functions — only the entry-context fixpoint can see this
        findings = lint_project(
            ["R7"],
            mod="""
            class R:
                def top(self):
                    with self._rwlock.read_locked():
                        self.helper()

                def helper(self):
                    with self._rwlock.write_locked():
                        pass
            """,
        )
        assert locations(findings) == [("R7", "mod.py", 8)]

    def test_cross_function_order_cycle_flagged(self):
        findings = lint_project(
            ["R7"],
            mod="""
            class R:
                def path_one(self):
                    with self._lock_a:
                        with self._lock_b:
                            pass

                def path_two(self):
                    with self._lock_b:
                        with self._lock_a:
                            pass
            """,
        )
        assert len(findings) >= 1
        assert all(f.rule_id == "R7" for f in findings)
        assert "cycle" in findings[0].message

    def test_consistent_order_is_clean(self):
        findings = lint_project(
            ["R7"],
            mod="""
            class R:
                def one(self):
                    with self._rwlock.write_locked():
                        with self._seed_lock:
                            pass

                def two(self):
                    with self._rwlock.read_locked():
                        with self._records_lock:
                            pass
            """,
        )
        assert findings == []

    def test_sequential_reacquire_is_clean(self):
        # release before re-acquire: no overlap, no violation
        findings = lint_project(
            ["R7"],
            mod="""
            class R:
                def f(self):
                    with self._rwlock.read_locked():
                        pass
                    with self._rwlock.write_locked():
                        pass
            """,
        )
        assert findings == []


class TestR8BlockingUnderWrite:
    def test_sleep_under_write_flagged(self):
        findings = lint_project(
            ["R8"],
            mod="""
            import time

            class R:
                def f(self):
                    with self._rwlock.write_locked():
                        time.sleep(0.1)
            """,
        )
        assert locations(findings) == [("R8", "mod.py", 7)]

    def test_kernel_under_write_flagged(self):
        findings = lint_project(
            ["R8"],
            mod="""
            from repro.ppr.kernels import frontier_push

            class R:
                def f(self, view, s):
                    with self._rwlock.write_locked():
                        frontier_push(view, s, 0.2, 1e-4)
            """,
        )
        assert locations(findings) == [("R8", "mod.py", 7)]

    def test_query_method_under_write_flagged(self):
        findings = lint_project(
            ["R8"],
            mod="""
            class R:
                def f(self, s):
                    with self._rwlock.write_locked():
                        return self.algorithm.query(s)
            """,
        )
        assert locations(findings) == [("R8", "mod.py", 5)]

    def test_interprocedural_sleep_flagged(self):
        # the sleep sits in a helper entered from a write section
        findings = lint_project(
            ["R8"],
            mod="""
            import time

            class R:
                def top(self):
                    with self._rwlock.write_locked():
                        self.helper()

                def helper(self):
                    time.sleep(0.1)
            """,
        )
        assert locations(findings) == [("R8", "mod.py", 10)]

    def test_kernel_under_read_is_clean(self):
        findings = lint_project(
            ["R8"],
            mod="""
            class R:
                def f(self, s):
                    with self._rwlock.read_locked():
                        return self.algorithm.query(s)
            """,
        )
        assert findings == []


class TestR9GuardedBy:
    FIXTURE = """
    class R:
        def __init__(self):
            self._degraded = False  # guarded-by: self._rwlock[write]
            self.records = []  # guarded-by: self._records_lock

        def good_flag(self):
            with self._rwlock.write_locked():
                self._degraded = True

        def bad_flag(self):
            self._degraded = True

        def bad_flag_read_hold(self):
            with self._rwlock.read_locked():
                self._degraded = True

        def good_append(self, r):
            with self._records_lock:
                self.records.append(r)

        def bad_append(self, r):
            self.records.append(r)
    """

    def test_unlocked_and_wrong_mode_writes_flagged(self):
        findings = lint_project(["R9"], mod=self.FIXTURE)
        assert locations(findings) == [
            ("R9", "mod.py", 12),  # bad_flag
            ("R9", "mod.py", 16),  # bad_flag_read_hold (read != write)
            ("R9", "mod.py", 23),  # bad_append
        ]

    def test_init_is_exempt(self):
        findings = lint_project(["R9"], mod=self.FIXTURE)
        assert all(f.line > 5 for f in findings)

    def test_interprocedural_guard_satisfied(self):
        # writer helper only ever entered under the write lock
        findings = lint_project(
            ["R9"],
            mod="""
            class R:
                def __init__(self):
                    self._flag = False  # guarded-by: self._rwlock[write]

                def top(self):
                    with self._rwlock.write_locked():
                        self._set()

                def _set(self):
                    self._flag = True
            """,
        )
        assert findings == []

    def test_mutating_method_counts_as_write(self):
        findings = lint_project(
            ["R9"],
            mod="""
            class R:
                def __init__(self):
                    self._entries = {}  # guarded-by: self._lock

                def bad(self, k):
                    self._entries.pop(k, None)
            """,
        )
        assert locations(findings) == [("R9", "mod.py", 7)]


class TestR10SnapshotEscape:
    # the canonical cross-function case: acquisition hidden in one
    # helper, mutation hidden in another — invisible per-function
    CROSS_FUNCTION = """
    def get_view(g):
        return csr_view(g)

    def flush(g):
        g.add_edge(1, 2)

    def serve(g):
        view = get_view(g)
        flush(g)
        return view.out_neighbors_of(0)
    """

    def test_cross_function_escape_flagged(self):
        findings = lint_project(["R10"], mod=self.CROSS_FUNCTION)
        assert locations(findings) == [("R10", "mod.py", 11)]
        assert "mutates the graph" in findings[0].message

    def test_single_function_pass_misses_it(self):
        # the acceptance-criterion demonstration: R3 (per-file, per-
        # function) sees neither the csr_view acquisition nor the
        # mutation, so it reports nothing on the same fixture
        r3_only = LintConfig(
            select=frozenset({"R3"}), restrict_scopes=False
        )
        findings = run_source(
            textwrap.dedent(self.CROSS_FUNCTION), "mod.py", r3_only
        )
        assert findings == []

    def test_lock_escape_flagged(self):
        findings = lint_project(
            ["R10"],
            mod="""
            class R:
                def f(self, g):
                    with self._rwlock.read_locked():
                        view = csr_view(g)
                    return view.out_neighbors_of(0)
            """,
        )
        assert locations(findings) == [("R10", "mod.py", 6)]
        assert "released" in findings[0].message

    def test_use_inside_critical_section_is_clean(self):
        findings = lint_project(
            ["R10"],
            mod="""
            class R:
                def f(self, g):
                    with self._rwlock.read_locked():
                        view = csr_view(g)
                        return view.out_neighbors_of(0)
            """,
        )
        assert findings == []

    def test_local_direct_case_left_to_r3(self):
        # both acquisition and mutation are direct and local: R3's
        # territory, R10 must not double-report
        findings = lint_project(
            ["R10"],
            mod="""
            def f(g):
                view = csr_view(g)
                g.add_edge(1, 2)
                return view.out_neighbors_of(0)
            """,
        )
        assert findings == []

    def test_reobtained_view_is_clean(self):
        findings = lint_project(
            ["R10"],
            mod="""
            def get_view(g):
                return csr_view(g)

            def flush(g):
                g.add_edge(1, 2)

            def serve(g):
                view = get_view(g)
                flush(g)
                view = get_view(g)
                return view.out_neighbors_of(0)
            """,
        )
        assert findings == []


class TestR11MetricInCritical:
    def test_registry_call_under_write_flagged(self):
        findings = lint_project(
            ["R11"],
            mod="""
            class R:
                def f(self, dt):
                    with self._rwlock.write_locked():
                        self.metrics.histogram("service.update").observe(dt)
            """,
        )
        assert locations(findings) == [("R11", "mod.py", 5)]

    def test_registry_call_under_mutex_flagged(self):
        findings = lint_project(
            ["R11"],
            mod="""
            class R:
                def f(self):
                    with self._records_lock:
                        self.metrics.counter("serving.faults").inc()
            """,
        )
        assert locations(findings) == [("R11", "mod.py", 5)]

    def test_read_hold_is_clean(self):
        # read holds are shared; registry contention there does not
        # serialize the pool
        findings = lint_project(
            ["R11"],
            mod="""
            class R:
                def f(self, dt):
                    with self._rwlock.read_locked():
                        self.metrics.histogram("service.query").observe(dt)
            """,
        )
        assert findings == []

    def test_time_module_not_confused_with_registry(self):
        findings = lint_project(
            ["R11"],
            mod="""
            import time

            class R:
                def f(self):
                    with self._records_lock:
                        return time.time()
            """,
        )
        assert findings == []

    def test_scoped_to_serving_paths(self):
        source = textwrap.dedent(
            """
            class R:
                def f(self, dt):
                    with self._lock:
                        self.metrics.counter("cache.hits").inc()
            """
        )
        scoped = LintConfig()  # restrict_scopes=True
        in_scope = run_project_sources(
            {"src/repro/serving/thing.py": source}, scoped, ["R11"]
        )
        out_of_scope = run_project_sources(
            {"src/repro/cache/thing.py": source}, scoped, ["R11"]
        )
        assert [f.rule_id for f in in_scope] == ["R11"]
        assert out_of_scope == []


class TestSuppressionsApply:
    def test_project_findings_honor_line_suppressions(self):
        findings = lint_project(
            None,
            mod="""
            import time

            class R:
                def f(self):
                    with self._rwlock.write_locked():
                        time.sleep(0.1)  # reprolint: disable=R8  startup only
            """,
        )
        assert findings == []
