"""Tests for the reprolint engine: suppressions, runner, reporting, CLI."""

import json
import textwrap

import pytest

import repro.analysis  # noqa: F401  (registers both rule packs)
from repro.analysis import (
    PROJECT_RULES,
    RULES,
    Finding,
    LintConfig,
    Rule,
    apply_baseline,
    exit_code,
    format_findings,
    known_rule_ids,
    load_baseline,
    register,
    run_paths,
    run_source,
    write_baseline,
)
from repro.analysis.__main__ import main

UNSCOPED = LintConfig(restrict_scopes=False)

# an R1 violation usable anywhere (R1 is unscoped by design)
R1_SNIPPET = "import numpy as np\nx = np.random.choice([1, 2])\n"


def lint(source, config=UNSCOPED, path="fixture.py"):
    return run_source(textwrap.dedent(source), path, config)


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert set(RULES) == {"R1", "R2", "R3", "R4", "R5", "R6"}

    def test_all_five_project_rules_registered(self):
        assert set(PROJECT_RULES) == {"R7", "R8", "R9", "R10", "R11"}

    def test_known_ids_span_both_families_plus_hygiene(self):
        assert known_rule_ids() == (
            frozenset(RULES) | frozenset(PROJECT_RULES) | {"R0"}
        )

    def test_project_rule_ids_collide_with_file_rule_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            from repro.analysis import register_project
            from repro.analysis.engine import ProjectRule

            @register_project
            class DupAcrossFamilies(ProjectRule):
                rule_id = "R1"
                name = "dup"

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register
            class Dup(Rule):
                rule_id = "R1"
                name = "dup"

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):

            @register
            class BadSeverity(Rule):
                rule_id = "R99"
                name = "bad"
                severity = "fatal"

    def test_every_rule_documents_itself(self):
        for cls in RULES.values():
            assert cls.name
            assert cls.rationale


class TestSuppressions:
    def test_line_disable_suppresses(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R1\n"
        )
        assert lint(src) == []

    def test_line_disable_other_rule_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R2\n"
        )
        assert [f.rule_id for f in lint(src)] == ["R1"]

    def test_line_disable_multiple_ids(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R2, R1\n"
        )
        assert lint(src) == []

    def test_file_disable_suppresses_everywhere(self):
        src = (
            "# reprolint: disable-file=R1\n"
            "import numpy as np\n"
            "x = np.random.choice([1, 2])\n"
            "y = np.random.random()\n"
        )
        assert lint(src) == []

    def test_disable_on_unrelated_line_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "# reprolint: disable=R1\n"
            "x = np.random.choice([1, 2])\n"
        )
        assert [f.rule_id for f in lint(src)] == ["R1"]

    def test_justification_text_shares_the_comment(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1])"
            "  # reprolint: disable=R1  seeded upstream, see docs\n"
        )
        assert lint(src) == []

    def test_file_disable_mixed_with_line_disable(self):
        # disable-file covers R1 everywhere; the R4 violation needs
        # its own line-level disable and gets one — file-level and
        # line-level tables must compose, not shadow each other
        src = (
            "# reprolint: disable-file=R1\n"
            "import numpy as np\n"
            "x = np.random.choice([1, 2])\n"
            "y = np.random.random()\n"
            "def f(acc=[]):  # reprolint: disable=R4  fixture only\n"
            "    return acc\n"
            "def g(acc=[]):\n"
            "    return acc\n"
        )
        findings = lint(src)
        assert [(f.rule_id, f.line) for f in findings] == [("R4", 7)]

    def test_unknown_rule_id_warns_instead_of_silently_passing(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R42\n"
        )
        findings = lint(src)
        ids = [(f.rule_id, f.severity) for f in findings]
        assert ("R1", "error") in ids  # R42 suppressed nothing
        assert ("R0", "warning") in ids  # and the typo is surfaced
        r0 = next(f for f in findings if f.rule_id == "R0")
        assert "R42" in r0.message and "unknown" in r0.message
        assert r0.line == 2

    def test_unknown_id_mixed_with_known_still_suppresses_known(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R1,R42\n"
        )
        findings = lint(src)
        assert [f.rule_id for f in findings] == ["R0"]

    def test_unknown_id_warning_keeps_exit_code_zero(self):
        src = "x = 1  # reprolint: disable=R42\n"
        findings = lint(src)
        assert [f.rule_id for f in findings] == ["R0"]
        assert exit_code(findings, []) == 0

    def test_hygiene_warning_is_itself_suppressible(self):
        src = "x = 1  # reprolint: disable=R0,R42  historical id\n"
        assert lint(src) == []

    def test_project_rule_ids_are_known_to_hygiene(self):
        src = "x = 1  # reprolint: disable=R7,R10\n"
        assert lint(src) == []


class TestSarif:
    def test_sarif_structure(self):
        log = json.loads(format_findings(lint(R1_SNIPPET), "sarif"))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["R1"]
        result = run["results"][0]
        assert result["ruleId"] == "R1"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "fixture.py"
        assert loc["region"]["startLine"] == 2
        assert loc["region"]["startColumn"] >= 1  # SARIF is 1-based

    def test_sarif_empty_run(self):
        log = json.loads(format_findings([], "sarif"))
        assert log["runs"][0]["results"] == []

    def test_sarif_rule_metadata_carries_rationale(self):
        log = json.loads(format_findings(lint(R1_SNIPPET), "sarif"))
        rule = log["runs"][0]["tool"]["driver"]["rules"][0]
        assert rule["shortDescription"]["text"] == "global-rng"
        assert rule["fullDescription"]["text"]


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        findings = lint(R1_SNIPPET)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        new, suppressed = apply_baseline(
            findings, load_baseline(baseline_file)
        )
        assert new == [] and suppressed == len(findings)

    def test_new_findings_survive_baseline(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, lint(R1_SNIPPET))
        extended = R1_SNIPPET + "def f(acc=[]):\n    return acc\n"
        new, suppressed = apply_baseline(
            lint(extended), load_baseline(baseline_file)
        )
        assert suppressed == 1
        assert [f.rule_id for f in new] == ["R4"]

    def test_line_drift_does_not_invalidate_baseline(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, lint(R1_SNIPPET))
        shifted = "# a new comment shifts every line\n" + R1_SNIPPET
        new, suppressed = apply_baseline(
            lint(shifted), load_baseline(baseline_file)
        )
        assert new == [] and suppressed == 1

    def test_multiplicity_is_respected(self, tmp_path):
        # two identical findings baselined tolerate two, not three
        f = Finding("R1", "error", "p.py", 1, 0, "same message")
        g = Finding("R1", "error", "p.py", 9, 0, "same message")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, [f, g])
        third = Finding("R1", "error", "p.py", 20, 0, "same message")
        new, suppressed = apply_baseline(
            [f, g, third], load_baseline(baseline_file)
        )
        assert suppressed == 2
        assert new == [third]

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(bad)
        missing_key = tmp_path / "missing.json"
        missing_key.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError, match="findings"):
            load_baseline(missing_key)
        with pytest.raises(ValueError):
            load_baseline(tmp_path / "absent.json")


class TestParallelJobs:
    def _tree(self, tmp_path):
        (tmp_path / "a.py").write_text(R1_SNIPPET)
        (tmp_path / "b.py").write_text(
            "def f(acc=[]):\n    return acc\n"
        )
        (tmp_path / "c.py").write_text("x = 1\n")
        return tmp_path

    def test_jobs_matches_serial_results(self, tmp_path):
        tree = self._tree(tmp_path)
        serial, serial_errors = run_paths([tree], UNSCOPED, jobs=1)
        parallel, parallel_errors = run_paths([tree], UNSCOPED, jobs=2)
        assert serial == parallel
        assert serial_errors == parallel_errors
        assert {f.rule_id for f in serial} == {"R1", "R4"}

    def test_jobs_reports_syntax_errors(self, tmp_path):
        tree = self._tree(tmp_path)
        (tree / "broken.py").write_text("def f(:\n")
        _, errors = run_paths([tree], UNSCOPED, jobs=2)
        assert len(errors) == 1 and "syntax error" in errors[0]


class TestSelection:
    def test_select_limits_rules(self):
        src = R1_SNIPPET + "def f(acc=[]):\n    return acc\n"
        only_r4 = LintConfig(
            select=frozenset({"R4"}), restrict_scopes=False
        )
        assert {f.rule_id for f in lint(src, only_r4)} == {"R4"}

    def test_ignore_drops_rules(self):
        src = R1_SNIPPET + "def f(acc=[]):\n    return acc\n"
        no_r4 = LintConfig(ignore=frozenset({"R4"}), restrict_scopes=False)
        assert {f.rule_id for f in lint(src, no_r4)} == {"R1"}


class TestRunnerAndReporting:
    def test_run_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(R1_SNIPPET)
        findings, errors = run_paths([tmp_path], UNSCOPED)
        assert errors == []
        assert [f.rule_id for f in findings] == ["R1"]

    def test_run_paths_reports_syntax_errors(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        findings, errors = run_paths([tmp_path], UNSCOPED)
        assert findings == []
        assert len(errors) == 1
        assert "syntax error" in errors[0]
        assert exit_code(findings, errors) == 2

    def test_exit_codes(self):
        clean: list[Finding] = []
        err = Finding("R1", "error", "p.py", 1, 0, "m")
        warn = Finding("R1", "warning", "p.py", 1, 0, "m")
        assert exit_code(clean, []) == 0
        assert exit_code([warn], []) == 0
        assert exit_code([err], []) == 1
        assert exit_code(clean, ["p.py: unreadable"]) == 2

    def test_json_format_round_trips(self):
        findings = lint(R1_SNIPPET)
        payload = json.loads(format_findings(findings, "json"))
        assert payload[0]["rule_id"] == "R1"
        assert payload[0]["line"] == 2

    def test_text_format_is_location_prefixed(self):
        text = format_findings(lint(R1_SNIPPET), "text")
        assert text.startswith("fixture.py:2:")
        assert "R1" in text

    def test_findings_sorted_by_location(self):
        src = (
            "import numpy as np\n"
            "b = np.random.random()\n"
            "a = np.random.choice([1])\n"
        )
        lines = [f.line for f in lint(src)]
        assert lines == sorted(lines)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0

    def test_violation_exits_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(R1_SNIPPET)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr()
        assert "R1" in out.out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(R1_SNIPPET)
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule_id"] == "R1"

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--select", "R42", str(tmp_path)]) == 2

    def test_list_rules_covers_both_families(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 12):
            assert f"R{n}" in out
        assert "per-file" in out and "project" in out

    def test_sarif_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(R1_SNIPPET)
        assert main(["--format", "sarif", str(tmp_path)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "R1"

    def test_write_baseline_then_lint_against_it(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(R1_SNIPPET)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["--write-baseline", str(baseline), str(tmp_path / "bad.py")]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()  # drop the write-baseline notice
        # baselined finding no longer fails the run...
        assert main(
            ["--baseline", str(baseline), str(tmp_path / "bad.py")]
        ) == 0
        assert "baselined" in capsys.readouterr().err
        # ...but a fresh violation still does
        (tmp_path / "bad.py").write_text(
            R1_SNIPPET + "def f(acc=[]):\n    return acc\n"
        )
        assert main(
            ["--baseline", str(baseline), str(tmp_path / "bad.py")]
        ) == 1
        out = capsys.readouterr().out
        assert "R4" in out and "R1" not in out.replace("R1_", "")

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["--baseline", str(bad), str(tmp_path)]) == 2

    def test_jobs_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(R1_SNIPPET)
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--jobs", "2", str(tmp_path)]) == 1
        assert "R1" in capsys.readouterr().out

    def test_invalid_jobs_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--jobs", "0", str(tmp_path)]) == 2
