"""Tests for the reprolint engine: suppressions, runner, reporting, CLI."""

import json
import textwrap

import pytest

import repro.analysis  # noqa: F401  (registers the rule pack)
from repro.analysis import (
    RULES,
    Finding,
    LintConfig,
    Rule,
    exit_code,
    format_findings,
    register,
    run_paths,
    run_source,
)
from repro.analysis.__main__ import main

UNSCOPED = LintConfig(restrict_scopes=False)

# an R1 violation usable anywhere (R1 is unscoped by design)
R1_SNIPPET = "import numpy as np\nx = np.random.choice([1, 2])\n"


def lint(source, config=UNSCOPED, path="fixture.py"):
    return run_source(textwrap.dedent(source), path, config)


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert set(RULES) == {"R1", "R2", "R3", "R4", "R5", "R6"}

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register
            class Dup(Rule):
                rule_id = "R1"
                name = "dup"

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):

            @register
            class BadSeverity(Rule):
                rule_id = "R99"
                name = "bad"
                severity = "fatal"

    def test_every_rule_documents_itself(self):
        for cls in RULES.values():
            assert cls.name
            assert cls.rationale


class TestSuppressions:
    def test_line_disable_suppresses(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R1\n"
        )
        assert lint(src) == []

    def test_line_disable_other_rule_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R2\n"
        )
        assert [f.rule_id for f in lint(src)] == ["R1"]

    def test_line_disable_multiple_ids(self):
        src = (
            "import numpy as np\n"
            "x = np.random.choice([1, 2])  # reprolint: disable=R2, R1\n"
        )
        assert lint(src) == []

    def test_file_disable_suppresses_everywhere(self):
        src = (
            "# reprolint: disable-file=R1\n"
            "import numpy as np\n"
            "x = np.random.choice([1, 2])\n"
            "y = np.random.random()\n"
        )
        assert lint(src) == []

    def test_disable_on_unrelated_line_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "# reprolint: disable=R1\n"
            "x = np.random.choice([1, 2])\n"
        )
        assert [f.rule_id for f in lint(src)] == ["R1"]


class TestSelection:
    def test_select_limits_rules(self):
        src = R1_SNIPPET + "def f(acc=[]):\n    return acc\n"
        only_r4 = LintConfig(
            select=frozenset({"R4"}), restrict_scopes=False
        )
        assert {f.rule_id for f in lint(src, only_r4)} == {"R4"}

    def test_ignore_drops_rules(self):
        src = R1_SNIPPET + "def f(acc=[]):\n    return acc\n"
        no_r4 = LintConfig(ignore=frozenset({"R4"}), restrict_scopes=False)
        assert {f.rule_id for f in lint(src, no_r4)} == {"R1"}


class TestRunnerAndReporting:
    def test_run_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(R1_SNIPPET)
        findings, errors = run_paths([tmp_path], UNSCOPED)
        assert errors == []
        assert [f.rule_id for f in findings] == ["R1"]

    def test_run_paths_reports_syntax_errors(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        findings, errors = run_paths([tmp_path], UNSCOPED)
        assert findings == []
        assert len(errors) == 1
        assert "syntax error" in errors[0]
        assert exit_code(findings, errors) == 2

    def test_exit_codes(self):
        clean: list[Finding] = []
        err = Finding("R1", "error", "p.py", 1, 0, "m")
        warn = Finding("R1", "warning", "p.py", 1, 0, "m")
        assert exit_code(clean, []) == 0
        assert exit_code([warn], []) == 0
        assert exit_code([err], []) == 1
        assert exit_code(clean, ["p.py: unreadable"]) == 2

    def test_json_format_round_trips(self):
        findings = lint(R1_SNIPPET)
        payload = json.loads(format_findings(findings, "json"))
        assert payload[0]["rule_id"] == "R1"
        assert payload[0]["line"] == 2

    def test_text_format_is_location_prefixed(self):
        text = format_findings(lint(R1_SNIPPET), "text")
        assert text.startswith("fixture.py:2:")
        assert "R1" in text

    def test_findings_sorted_by_location(self):
        src = (
            "import numpy as np\n"
            "b = np.random.random()\n"
            "a = np.random.choice([1])\n"
        )
        lines = [f.line for f in lint(src)]
        assert lines == sorted(lines)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0

    def test_violation_exits_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(R1_SNIPPET)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr()
        assert "R1" in out.out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(R1_SNIPPET)
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule_id"] == "R1"

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--select", "R42", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule_id in out
