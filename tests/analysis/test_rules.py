"""Per-rule fixture tests: positive, negative, and suppression cases."""

import textwrap

import repro.analysis  # noqa: F401  (registers the rule pack)
from repro.analysis import LintConfig, run_source

UNSCOPED = LintConfig(restrict_scopes=False)


def ids(source, config=UNSCOPED, path="fixture.py"):
    return [
        f.rule_id for f in run_source(textwrap.dedent(source), path, config)
    ]


class TestR1GlobalRng:
    def test_numpy_global_draw_flagged(self):
        assert ids(
            """
            import numpy as np
            x = np.random.choice([1, 2, 3])
            """
        ) == ["R1"]

    def test_numpy_alias_resolved(self):
        assert ids(
            """
            import numpy
            x = numpy.random.random()
            """
        ) == ["R1"]

    def test_stdlib_global_draw_flagged(self):
        assert ids(
            """
            import random
            x = random.randint(0, 10)
            """
        ) == ["R1"]

    def test_generator_construction_allowed(self):
        assert ids(
            """
            import numpy as np
            import random
            rng = np.random.default_rng(7)
            local = random.Random(7)
            x = rng.choice([1, 2])
            y = local.randint(0, 10)
            """
        ) == []

    def test_suppression(self):
        assert ids(
            """
            import numpy as np
            x = np.random.choice([1])  # reprolint: disable=R1 (fixture)
            """
        ) == []


class TestR2FloatCompare:
    def test_equality_against_float_flagged(self):
        assert ids("ok = value == 0.5\n") == ["R2"]

    def test_inequality_against_float_flagged(self):
        assert ids("ok = 0.0 != residue\n") == ["R2"]

    def test_chained_comparison_flagged(self):
        assert ids("ok = a < b == 1.5\n") == ["R2"]

    def test_integer_compare_not_flagged(self):
        assert ids("ok = degree == 0\n") == []

    def test_ordering_compare_not_flagged(self):
        assert ids("ok = value > 0.5\n") == []

    def test_scoped_to_hot_paths(self):
        scoped = LintConfig()  # restrict_scopes=True
        assert ids("ok = v == 0.5\n", scoped, "src/repro/ppr/x.py") == ["R2"]
        assert ids("ok = v == 0.5\n", scoped, "src/repro/core/x.py") == ["R2"]
        assert ids("ok = v == 0.5\n", scoped, "src/repro/obs/x.py") == []

    def test_suppression(self):
        assert ids(
            "ok = v != 0.0  # reprolint: disable=R2 (exact-zero sentinel)\n"
        ) == []


R3_POSITIVE = """
def refresh(graph, u, v):
    view = csr_view(graph)
    graph.add_edge(u, v)
    return view.out_neighbors_of(0)
"""

R3_NEGATIVE = """
def refresh(graph, u, v):
    view = csr_view(graph)
    degree = view.out_deg[0]
    graph.add_edge(u, v)
    view = csr_view(graph)
    return degree, view.out_neighbors_of(0)
"""


class TestR3CsrViewLifetime:
    def test_stale_use_after_mutation_flagged(self):
        assert ids(R3_POSITIVE) == ["R3"]

    def test_reacquired_view_not_flagged(self):
        assert ids(R3_NEGATIVE) == []

    def test_use_before_mutation_not_flagged(self):
        assert ids(
            """
            def peek(graph, u, v):
                view = csr_view(graph)
                degree = view.out_deg[0]
                graph.add_edge(u, v)
                return degree
            """
        ) == []

    def test_apply_update_counts_as_mutation(self):
        assert ids(
            """
            def track(graph, algorithm, update):
                view = csr_view(graph)
                algorithm.apply_update(update)
                return view.n
            """
        ) == ["R3"]

    def test_suppression_file_wide(self):
        src = "# reprolint: disable-file=R3 (fixture)\n" + R3_POSITIVE
        assert ids(src) == []


class TestR4MutableDefault:
    def test_list_default_flagged(self):
        assert ids("def f(acc=[]):\n    return acc\n") == ["R4"]

    def test_dict_call_default_flagged(self):
        assert ids("def f(acc=dict()):\n    return acc\n") == ["R4"]

    def test_none_default_not_flagged(self):
        assert ids("def f(acc=None):\n    return acc or []\n") == []

    def test_shadowed_builtin_parameter_flagged(self):
        assert ids("def f(list):\n    return list\n") == ["R4"]

    def test_shadowed_builtin_assignment_flagged(self):
        assert ids("sum = 3\n") == ["R4"]

    def test_ordinary_names_not_flagged(self):
        assert ids("def f(items):\n    total = 0\n    return total\n") == []

    def test_suppression(self):
        assert ids(
            "def f(acc=[]):  # reprolint: disable=R4 (fixture)\n"
            "    return acc\n"
        ) == []


# R5 fixtures pin the registry via config so the test is independent of
# what repro/obs/names.py happens to contain.
R5_CONFIG = LintConfig(
    restrict_scopes=False,
    metric_counters=frozenset({"csr_rebuilds"}),
    metric_histograms=frozenset({"service.query"}),
)


class TestR5MetricName:
    def test_unregistered_name_flagged(self):
        src = 'metrics.histogram("service.qurey").observe(1.0)\n'
        assert ids(src, R5_CONFIG) == ["R5"]

    def test_wrong_kind_flagged_with_hint(self):
        src = 'metrics.counter("service.query").inc()\n'
        findings = run_source(src, "fixture.py", R5_CONFIG)
        assert [f.rule_id for f in findings] == ["R5"]
        assert "wrong metric kind" in findings[0].message

    def test_registered_names_not_flagged(self):
        src = (
            'metrics.counter("csr_rebuilds").inc()\n'
            'metrics.histogram("service.query").observe(1.0)\n'
            'with metrics.time("service.query"):\n'
            "    pass\n"
        )
        assert ids(src, R5_CONFIG) == []

    def test_non_literal_names_ignored(self):
        assert ids("metrics.counter(name).inc()\n", R5_CONFIG) == []

    def test_default_registry_parses_names_module(self):
        # without a config override the registry comes from
        # src/repro/obs/names.py, which registers service.query
        assert ids(
            'metrics.histogram("service.query").observe(1.0)\n'
        ) == []

    def test_suppression(self):
        src = (
            'metrics.counter("adhoc").inc()'
            "  # reprolint: disable=R5 (fixture)\n"
        )
        assert ids(src, R5_CONFIG) == []


# the cache.* namespace rides on the same registry: names registered in
# src/repro/obs/names.py extend R5 coverage automatically
R5_CACHE_CONFIG = LintConfig(
    restrict_scopes=False,
    metric_counters=frozenset({"cache.hits", "cache.evictions_staleness"}),
    metric_gauges=frozenset({"cache.hit_rate"}),
)


class TestR5CacheMetrics:
    def test_cache_names_accepted_from_default_registry(self):
        # the real src/repro/obs/names.py registers the cache.* family
        src = (
            'metrics.counter("cache.hits").inc()\n'
            'metrics.counter("cache.misses").inc()\n'
            'metrics.counter("cache.evictions_staleness").inc(2)\n'
            'metrics.gauge("cache.hit_rate").set(0.5)\n'
            'metrics.gauge("cache.size").set(1.0)\n'
            'metrics.histogram("service.query_hit").observe(1e-6)\n'
        )
        assert ids(src) == []

    def test_unregistered_cache_name_flagged(self):
        assert ids('metrics.counter("cache.hit").inc()\n') == ["R5"]

    def test_cache_counter_as_histogram_flagged(self):
        findings = run_source(
            'metrics.histogram("cache.hits").observe(1.0)\n',
            "fixture.py",
            R5_CACHE_CONFIG,
        )
        assert [f.rule_id for f in findings] == ["R5"]
        assert "wrong metric kind" in findings[0].message

    def test_cache_gauge_as_counter_flagged(self):
        findings = run_source(
            'metrics.counter("cache.hit_rate").inc()\n',
            "fixture.py",
            R5_CACHE_CONFIG,
        )
        assert [f.rule_id for f in findings] == ["R5"]
        assert "wrong metric kind" in findings[0].message

    def test_pinned_cache_registry_accepts_its_names(self):
        src = (
            'metrics.counter("cache.hits").inc()\n'
            'metrics.gauge("cache.hit_rate").set(0.1)\n'
        )
        assert ids(src, R5_CACHE_CONFIG) == []


class TestR6UnitSuffix:
    def test_bare_stem_parameter_flagged(self):
        assert ids("def f(timeout):\n    return timeout\n") == ["R6"]

    def test_stem_without_suffix_flagged(self):
        assert ids("queue_delay = 3\n") == ["R6"]

    def test_approved_suffixes_not_flagged(self):
        assert ids(
            """
            arrival_rate = 2.0
            wait_time = 0.5
            horizon_s = 10.0
            poll_interval_s = 0.1
            sweep_hz = 50.0
            """
        ) == []

    def test_paper_notation_exempt(self):
        assert ids("def f(lambda_q, lambda_u, t_q, t_u, rho):\n    pass\n") == []

    def test_private_names_exempt(self):
        assert ids("_delay = 1\n") == []

    def test_scoped_to_configured_files(self):
        scoped = LintConfig()  # restrict_scopes=True
        assert ids("timeout = 1\n", scoped, "src/repro/core/quota.py") == [
            "R6"
        ]
        assert ids("timeout = 1\n", scoped, "src/repro/core/system.py") == []

    def test_suppression(self):
        assert ids(
            "timeout = 1  # reprolint: disable=R6 (fixture)\n"
        ) == []
