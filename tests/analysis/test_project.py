"""Tests for the project-wide analysis layer (repro.analysis.project).

These cover the dataflow machinery the concurrency rules are built on:
module naming, call resolution, the lock-context statement walker, the
entry-context fixpoint, and the transitive function summaries.
"""

import textwrap

import repro.analysis  # noqa: F401  (registers both rule packs)
from repro.analysis import LintConfig
from repro.analysis.project import (
    MUTEX,
    READ,
    WRITE,
    Held,
    ProjectIndex,
    lockish,
    module_name_for,
)

UNSCOPED = LintConfig(restrict_scopes=False)


def build(**sources):
    """ProjectIndex from ``name="source"`` kwargs (name -> name.py)."""
    return ProjectIndex.from_sources(
        {
            f"{name}.py": textwrap.dedent(source)
            for name, source in sources.items()
        },
        UNSCOPED,
    )


class TestNaming:
    def test_repro_paths_get_dotted_names(self):
        assert module_name_for("src/repro/ppr/csr.py") == "repro.ppr.csr"
        assert module_name_for("src/repro/serving/__init__.py") == (
            "repro.serving"
        )

    def test_fixture_paths_use_stem(self):
        assert module_name_for("helper.py") == "helper"
        assert module_name_for("/tmp/x/helper.py") == "helper"

    def test_lockish_names(self):
        assert lockish("_lock")
        assert lockish("seed_lock")
        assert lockish("MUTEX".lower())
        assert not lockish("_cond")
        assert not lockish("blocker")


class TestSymbolsAndCalls:
    def test_functions_and_methods_indexed(self):
        index = build(
            mod="""
            def free(): pass

            class Box:
                def method(self): pass
            """
        )
        assert "mod.free" in index.functions
        assert "mod.Box.method" in index.functions

    def test_self_method_resolution(self):
        index = build(
            mod="""
            class Box:
                def outer(self):
                    self.inner()

                def inner(self): pass
            """
        )
        outer = index.functions["mod.Box.outer"]
        assert outer.callees == {"mod.Box.inner"}

    def test_import_alias_resolution(self):
        index = build(
            helper="""
            def util(): pass
            """,
            mod="""
            from helper import util

            def caller():
                util()
            """,
        )
        assert index.functions["mod.caller"].callees == {"helper.util"}

    def test_unique_name_fallback(self):
        index = build(
            helper="""
            def very_specific_helper(): pass
            """,
            mod="""
            def caller(obj):
                obj.very_specific_helper()
            """,
        )
        assert index.functions["mod.caller"].callees == {
            "helper.very_specific_helper"
        }

    def test_container_method_names_never_unique_resolved(self):
        # a project function named `append` must not swallow list.append
        index = build(
            helper="""
            def append(): pass
            """,
            mod="""
            def caller(items):
                items.append(1)
            """,
        )
        assert index.functions["mod.caller"].callees == set()

    def test_ambiguous_names_stay_unresolved(self):
        index = build(
            a="def helper(): pass",
            b="def helper(): pass",
            mod="""
            def caller(x):
                x.helper()
            """,
        )
        assert index.functions["mod.caller"].callees == set()


class TestLockContext:
    def test_with_read_locked_context(self):
        index = build(
            mod="""
            class R:
                def f(self):
                    with self._rwlock.read_locked():
                        self.g()

                def g(self): pass
            """
        )
        f = index.functions["mod.R.f"]
        calls = list(f.iter_events("call"))
        assert calls, "call event missing"
        assert Held("R._rwlock", READ) in calls[0].held

    def test_plain_mutex_with_block(self):
        index = build(
            mod="""
            class R:
                def f(self):
                    with self._seed_lock:
                        self.g()

                def g(self): pass
            """
        )
        call = next(index.functions["mod.R.f"].iter_events("call"))
        assert Held("R._seed_lock", MUTEX) in call.held

    def test_explicit_acquire_release_pair(self):
        index = build(
            mod="""
            class R:
                def f(self):
                    self._rwlock.acquire_write()
                    self.inside()
                    self._rwlock.release_write()
                    self.outside()

                def inside(self): pass
                def outside(self): pass
            """
        )
        events = [
            e
            for e in index.functions["mod.R.f"].iter_events("call")
        ]
        held_by_line = {e.line: e.held for e in events}
        assert Held("R._rwlock", WRITE) in held_by_line[5]
        assert held_by_line[7] == ()

    def test_release_in_finally_clears_context_after_try(self):
        index = build(
            mod="""
            class R:
                def f(self):
                    self._rwlock.acquire_write(timeout=0.0)
                    try:
                        self.inside()
                    finally:
                        self._rwlock.release_write()
                    self.outside()

                def inside(self): pass
                def outside(self): pass
            """
        )
        events = list(index.functions["mod.R.f"].iter_events("call"))
        by_line = {e.line: e.held for e in events}
        assert Held("R._rwlock", WRITE) in by_line[6]
        assert by_line[9] == ()

    def test_nested_defs_not_walked_under_context(self):
        index = build(
            mod="""
            class R:
                def f(self):
                    with self._rwlock.write_locked():
                        def later():
                            self.g()
                        return later

                def g(self): pass
            """
        )
        # the nested def's body runs later, under unknown context —
        # no call event attributed to f's write section
        assert list(index.functions["mod.R.f"].iter_events("call")) == []


class TestEntryHoldsFixpoint:
    def test_entry_context_propagates_through_calls(self):
        index = build(
            mod="""
            class R:
                def top(self):
                    with self._rwlock.write_locked():
                        self.mid()

                def mid(self):
                    self.leaf()

                def leaf(self): pass
            """
        )
        assert Held("R._rwlock", WRITE) in (
            index.functions["mod.R.mid"].entry_holds
        )
        assert Held("R._rwlock", WRITE) in (
            index.functions["mod.R.leaf"].entry_holds
        )

    def test_entry_context_is_union_over_sites(self):
        index = build(
            mod="""
            class R:
                def locked_caller(self):
                    with self._rwlock.read_locked():
                        self.shared()

                def unlocked_caller(self):
                    self.shared()

                def shared(self): pass
            """
        )
        # may-analysis: called from both contexts -> possibly under lock
        assert Held("R._rwlock", READ) in (
            index.functions["mod.R.shared"].entry_holds
        )


class TestSummaries:
    def test_transitive_mutates_graph(self):
        index = build(
            mod="""
            def leaf(g):
                g.add_edge(1, 2)

            def mid(g):
                leaf(g)

            def top(g):
                mid(g)
            """
        )
        assert index.functions["mod.leaf"].mutates_graph
        assert index.functions["mod.mid"].mutates_graph
        assert index.functions["mod.top"].mutates_graph

    def test_transitive_returns_view(self):
        index = build(
            mod="""
            def direct(g):
                return csr_view(g)

            def indirect(g):
                return direct(g)

            def via_variable(g):
                view = direct(g)
                return view
            """
        )
        assert index.functions["mod.direct"].returns_view
        assert index.functions["mod.indirect"].returns_view
        assert index.functions["mod.via_variable"].returns_view

    def test_non_view_functions_not_flagged(self):
        index = build(
            mod="""
            def plain(g):
                return len(g)
            """
        )
        assert not index.functions["mod.plain"].returns_view
        assert not index.functions["mod.plain"].mutates_graph


class TestGuardAnnotations:
    def test_guard_collected_with_mode(self):
        index = build(
            mod="""
            class R:
                def __init__(self):
                    self._flag = False  # guarded-by: self._rwlock[write]
                    self._items = []  # guarded-by: self._lock
            """
        )
        lock, mode, path, line = index.guarded[("R", "_flag")]
        assert (lock, mode) == ("R._rwlock", "write")
        assert path == "mod.py" and line == 4
        lock2, mode2, _, _ = index.guarded[("R", "_items")]
        assert (lock2, mode2) == ("R._lock", None)
