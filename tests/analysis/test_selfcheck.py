"""reprolint must hold on this repository's own source tree.

The CI gate runs ``python -m repro.analysis src`` and fails the build on
any finding; this test keeps that contract visible in the test suite and
proves the gate actually fires when a violation is introduced.
"""

from pathlib import Path

import repro
import repro.analysis  # noqa: F401  (registers the rule pack)
from repro.analysis import LintConfig, exit_code, run_paths
from repro.analysis.__main__ import main

SRC = Path(repro.__file__).resolve().parent


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        findings, errors = run_paths([SRC])
        assert errors == []
        assert findings == [], "\n".join(f.format_text() for f in findings)
        assert exit_code(findings, errors) == 0

    def test_cli_exits_zero_on_src(self):
        assert main([str(SRC)]) == 0

    def test_gate_fires_on_injected_violation(self, tmp_path):
        # a copy of a real module with one R1 violation injected must
        # flip the exit code to non-zero
        victim = SRC / "core" / "seed.py"
        patched = tmp_path / "seed.py"
        patched.write_text(
            victim.read_text(encoding="utf-8")
            + "\n\nimport numpy as _np\n_noise = _np.random.random()\n",
            encoding="utf-8",
        )
        assert main([str(patched)]) == 1

    def test_gate_fires_on_injected_concurrency_violation(self, tmp_path):
        # the project rules run through the same gate: a serving-path
        # module that sleeps inside a write section must fail the build.
        # (the path must contain a "serving" part so scoped rules apply)
        serving = tmp_path / "serving"
        serving.mkdir()
        (serving / "bad_runtime.py").write_text(
            "import time\n"
            "\n"
            "\n"
            "class Runtime:\n"
            "    def reconfigure(self):\n"
            "        with self._rwlock.write_locked():\n"
            "            time.sleep(1.0)\n",
            encoding="utf-8",
        )
        assert main([str(serving)]) == 1

    def test_guarded_by_annotations_exist_in_serving(self):
        # the runtime declares its lock discipline; if these vanish,
        # R9 silently stops checking anything real
        runtime = (SRC / "serving" / "runtime.py").read_text(
            encoding="utf-8"
        )
        assert "# guarded-by:" in runtime

    def test_scoped_rules_cover_their_targets(self):
        # the R2/R6/R11 scoping in LintConfig must keep matching the
        # tree layout; if these files move, the lint gate silently
        # loses them
        config = LintConfig()
        for name in config.unit_suffix_files:
            matches = list(SRC.rglob(name))
            assert matches, f"R6 target {name} missing from src tree"
        for part in config.float_compare_parts:
            assert (SRC / part).is_dir(), f"R2 scope {part}/ missing"
        for part in config.metric_critical_parts:
            assert (SRC / part).is_dir(), f"R11 scope {part}/ missing"
