"""FrontDoor QoS behaviors over the in-memory transport.

Drives the coroutines directly (no sockets): deadline propagation into
per-query budgets, shed-on-full with Retry-After, graceful degradation
while a shard range is down plus re-admission after respawn, and the
drift-driven reconfiguration loop.
"""

import asyncio
import time

from repro.api import ApiResponse, DriftPolicy, FrontDoor
from repro.graph import DynamicGraph
from repro.obs import MetricsRegistry
from repro.shard import ShardManager


def ring_graph(n=24):
    edges = [(u, (u + 1) % n) for u in range(n)]
    edges += [(u, (u + 5) % n) for u in range(0, n, 3)]
    return DynamicGraph.from_edges(sorted(set(edges)))


def make_manager(num_shards=1, **overrides):
    options = dict(
        backend="inproc",
        walk_cap=64,
        query_mode="exact",
        metrics=MetricsRegistry(),
    )
    options.update(overrides)
    return ShardManager(ring_graph(), num_shards, **options)


def wait_until(predicate, timeout_s=30.0, interval_s=0.005):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(interval_s)
    return True


def test_query_ok_envelope():
    with make_manager() as manager:
        frontdoor = FrontDoor(manager, default_top_k=5)
        response = asyncio.run(frontdoor.query(0))
        assert isinstance(response, ApiResponse)
        assert response.status_code == 200
        assert response.ok
        body = response.body
        assert body["status"] == "ok"
        assert body["source"] == 0
        assert len(body["values"]) == 5
        assert body["version"] >= 0
        assert "response_s" in body


def test_exhausted_budget_rejected_before_dispatch():
    with make_manager() as manager:
        frontdoor = FrontDoor(manager)
        routed_before = manager.metrics.snapshot()["counters"].get(
            "shard.queries_routed", 0
        )
        # the transport saw this request 10s ago; its 0.5s budget died
        # in the upstream queue — must 504 without touching a shard
        response = asyncio.run(
            frontdoor.query(
                0, budget_s=0.5, received_s=time.perf_counter() - 10.0
            )
        )
        assert response.status_code == 504
        assert response.body["status"] == "timeout"
        assert "budget" in response.body["reason"]
        routed_after = manager.metrics.snapshot()["counters"].get(
            "shard.queries_routed", 0
        )
        assert routed_after == routed_before
        shed = frontdoor.metrics.snapshot()["counters"]["api.shed"]
        assert shed == 1


def test_skewed_future_timestamp_cannot_extend_budget():
    """Regression: ``received_s`` comes from the transport clock, so a
    skewed/stepped client clock can place it in the *future*; the
    negative ``spent`` must not extend the deadline past budget_s."""
    with make_manager() as manager:
        frontdoor = FrontDoor(manager)
        captured = {}
        real_query = manager.query

        def capturing_query(source, deadline_s=None, top_k=None):
            captured["deadline_s"] = deadline_s
            return real_query(source, deadline_s=deadline_s, top_k=top_k)

        manager.query = capturing_query
        budget = 0.8
        response = asyncio.run(
            frontdoor.query(
                # the transport claims it saw this request 1000s from now
                0, budget_s=budget, received_s=time.perf_counter() + 1000.0
            )
        )
        assert response.status_code == 200
        # clamped: the forwarded deadline never exceeds the declared budget
        assert captured["deadline_s"] is not None
        assert captured["deadline_s"] <= budget


def test_generous_budget_is_forwarded_and_served():
    with make_manager() as manager:
        frontdoor = FrontDoor(manager)
        response = asyncio.run(
            frontdoor.query(
                0, budget_s=60.0, received_s=time.perf_counter()
            )
        )
        assert response.status_code == 200


def test_invalid_source_maps_to_400():
    with make_manager() as manager:
        frontdoor = FrontDoor(manager)
        response = asyncio.run(frontdoor.query(-1))
        assert response.status_code == 400
        assert response.body["status"] == "bad-request"


def test_shed_on_full_carries_retry_after():
    with make_manager(
        max_inflight_per_shard=1, auto_respawn=False
    ) as manager:
        frontdoor = FrontDoor(manager)
        handle = manager.shard_handle(0)

        async def scenario():
            handle.pause()  # deterministic backlog
            first = asyncio.ensure_future(frontdoor.query(0))
            # one tick runs the task up to its first await, past the
            # (synchronous) manager admission — the window is now full
            await asyncio.sleep(0)
            second = await frontdoor.query(1)
            assert second.status_code == 503
            assert second.body["shed_reason"] == "inflight-full"
            assert second.retry_after_s is not None
            assert second.retry_after_s > 0
            handle.resume()
            assert (await first).status_code == 200

        asyncio.run(scenario())


def test_unhealthy_range_sheds_then_readmits_after_respawn():
    with make_manager(num_shards=2) as manager:
        frontdoor = FrontDoor(manager)
        victim = manager.shard_handle(0)
        shed_source = next(
            s for s in range(24) if manager.router.route(s) == 0
        )
        live_source = next(
            s for s in range(24) if manager.router.route(s) == 1
        )
        victim.crash()
        assert wait_until(lambda: not victim.healthy)
        # while the range is down: 503 + Retry-After on its sources,
        # the other shard's range keeps serving
        response = asyncio.run(frontdoor.query(shed_source))
        if response.status_code == 503:  # respawn may already have won
            assert response.retry_after_s is not None
            assert response.body["shed_reason"] == "shard-unhealthy"
        assert asyncio.run(frontdoor.query(live_source)).status_code == 200
        # graceful re-admission: the respawned worker serves again
        assert wait_until(lambda: manager.healthy_shard_count() == 2)
        assert asyncio.run(frontdoor.query(shed_source)).status_code == 200
        assert asyncio.run(frontdoor.healthz()).status_code == 200


def test_healthz_degrades_to_503():
    with make_manager(auto_respawn=False) as manager:
        frontdoor = FrontDoor(manager)
        assert asyncio.run(frontdoor.healthz()).status_code == 200
        manager.shard_handle(0).crash()
        assert wait_until(
            lambda: manager.healthy_shard_count() == 0
        )
        response = asyncio.run(frontdoor.healthz())
        assert response.status_code == 503
        assert response.retry_after_s is not None


def test_update_and_metrics_endpoints():
    with make_manager(num_shards=2) as manager:
        frontdoor = FrontDoor(manager)

        async def scenario():
            update = await frontdoor.update(0, 7)
            assert update.status_code == 200
            assert update.body["version"] == 1
            assert update.body["acked_shards"] == [0, 1]
            snapshot = await frontdoor.metrics_snapshot()
            assert snapshot.status_code == 200
            counters = snapshot.body["manager"]["counters"]
            assert counters["shard.updates_broadcast"] == 1
            assert frontdoor.metrics.snapshot()["counters"][
                "api.requests"
            ] == 1

        asyncio.run(scenario())


def test_drift_detector_triggers_fleet_reconfigure():
    # workers carry QuotaControllers; the detector is armed at a far
    # lower rate than we actually send, so the burst must trip it
    with make_manager(use_controller=True) as manager:
        frontdoor = FrontDoor(
            manager,
            drift=DriftPolicy(
                lambda_q=0.01,
                lambda_u=0.01,
                window_s=10.0,
                threshold=0.5,
                min_events=10,
                cooldown_s=0.0,
            ),
        )

        async def burst():
            for _ in range(15):
                response = await frontdoor.query(0)
                assert response.status_code == 200

        asyncio.run(burst())
        # the re-solve runs on a worker thread; wait for it to land
        assert wait_until(lambda: len(frontdoor.reconfigurations) > 0)
        entry = frontdoor.reconfigurations[0]
        assert entry["lambda_q"] > 0.01
        assert "0" in entry["shards"]
