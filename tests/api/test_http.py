"""HTTP/1.1 end-to-end: real sockets on an ephemeral port.

One event loop runs both the server and a raw asyncio-streams client
(``Connection: close`` per request), so the wire format — status
lines, Retry-After rendering, JSON bodies, 404/405 routing — is
exercised exactly as a closed-loop client would see it.
"""

import asyncio
import json

from repro.api import FrontDoor, HttpServer
from repro.graph import DynamicGraph
from repro.obs import MetricsRegistry
from repro.shard import ShardManager


def ring_graph(n=24):
    edges = [(u, (u + 1) % n) for u in range(n)]
    edges += [(u, (u + 5) % n) for u in range(0, n, 3)]
    return DynamicGraph.from_edges(sorted(set(edges)))


async def fetch(port, method, target, body=None):
    """One raw HTTP request; returns (status, headers, parsed body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {target} HTTP/1.1\r\n"
        f"Host: 127.0.0.1:{port}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    header_block, _, body_bytes = raw.partition(b"\r\n\r\n")
    status_line, *header_lines = header_block.decode("latin-1").split("\r\n")
    status = int(status_line.split()[1])
    headers = {}
    for line in header_lines:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_bytes.decode() or "null")


def test_http_end_to_end():
    manager = ShardManager(
        ring_graph(),
        2,
        backend="inproc",
        walk_cap=64,
        query_mode="exact",
        auto_respawn=False,
        metrics=MetricsRegistry(),
    )

    async def scenario():
        server = HttpServer(FrontDoor(manager, default_top_k=4))
        await server.start()
        assert server.port != 0  # ephemeral port was resolved
        port = server.port
        try:
            # query: 200 with a truncated vector
            status, _, body = await fetch(port, "GET", "/query?source=0")
            assert status == 200
            assert body["status"] == "ok"
            assert len(body["values"]) == 4

            # explicit top_k wins over the server default
            status, _, body = await fetch(
                port, "GET", "/query?source=0&top_k=2"
            )
            assert status == 200
            assert len(body["values"]) == 2

            # missing required param / unparsable param
            status, _, body = await fetch(port, "GET", "/query")
            assert status == 400
            status, _, _ = await fetch(port, "GET", "/query?source=zap")
            assert status == 400

            # an already-dead budget is refused with 504
            status, _, body = await fetch(
                port, "GET", "/query?source=0&budget_s=0"
            )
            assert status == 504
            assert body["status"] == "timeout"

            # update broadcast through the wire
            status, _, body = await fetch(
                port, "POST", "/update", {"u": 0, "v": 7}
            )
            assert status == 200
            assert body["version"] == 1
            assert body["acked_shards"] == [0, 1]

            # health + metrics while the fleet is whole
            status, _, body = await fetch(port, "GET", "/healthz")
            assert status == 200
            assert body["fabric_version"] == 1
            status, _, body = await fetch(port, "GET", "/metrics")
            assert status == 200
            assert "api.requests" in body["manager"]["counters"]

            # routing edges: unknown path, wrong method, bad JSON
            status, _, _ = await fetch(port, "GET", "/nope")
            assert status == 404
            status, _, _ = await fetch(port, "POST", "/query")
            assert status == 405
            status, _, _ = await fetch(port, "GET", "/update")
            assert status == 405

            # kill a shard: queries for its range shed with an integer
            # Retry-After header, healthz degrades to 503
            manager.shard_handle(0).kill()
            shed_source = next(
                s for s in range(24) if manager.router.route(s) == 0
            )
            status, headers, body = await fetch(
                port, "GET", f"/query?source={shed_source}"
            )
            assert status == 503
            assert body["shed_reason"] == "shard-unhealthy"
            assert int(headers["retry-after"]) >= 1
            status, headers, _ = await fetch(port, "GET", "/healthz")
            assert status == 503
            assert "retry-after" in headers
        finally:
            await server.stop()

    try:
        asyncio.run(scenario())
    finally:
        manager.stop()
