"""Fuzz harness: sweeps pass their own oracles, deterministically."""

import json

import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.obs import MetricsRegistry
from repro.scenarios.__main__ import main as scenarios_main
from repro.scenarios.dsl import FAMILIES, flash_crowd
from repro.scenarios.fuzz import (
    jittered_scenario,
    run_drift_demo,
    run_fuzz,
    run_measured,
)
import numpy as np


class TestRunFuzz:
    def test_modeled_sweep_is_clean(self):
        report = run_fuzz(
            2,
            families=["edge-replay", "update-storm", "paper-pattern"],
            nodes=100,
            measured=False,
            drift=False,
            metrics=MetricsRegistry(),
        )
        assert report.ok, [str(v) for v in report.violations]
        # two modeled engines per (seed, family) cell
        assert len(report.cards) == 2 * 3 * 2

    def test_sweep_is_deterministic(self):
        kwargs = dict(
            families=["flash-crowd"],
            nodes=100,
            measured=False,
            drift=False,
        )
        a = run_fuzz(2, metrics=MetricsRegistry(), **kwargs)
        b = run_fuzz(2, metrics=MetricsRegistry(), **kwargs)
        assert [c.to_dict() for c in a.cards] == [
            c.to_dict() for c in b.cards
        ]

    def test_metrics_counted(self):
        metrics = MetricsRegistry()
        run_fuzz(
            1,
            families=["cache-buster"],
            nodes=80,
            measured=False,
            drift=False,
            metrics=metrics,
        )
        assert metrics.counter("scenario.runs").value == 2

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="seeds"):
            run_fuzz(0, measured=False, drift=False)
        with pytest.raises(ValueError, match="unknown families"):
            run_fuzz(1, families=["nope"], measured=False, drift=False)

    def test_jitter_covers_every_family(self):
        rng = np.random.default_rng(0)
        for family in FAMILIES:
            scenario = jittered_scenario(family, rng)
            assert scenario.family == family


class TestMeasuredEngine:
    def test_measured_replay_is_clean(self):
        scenario = flash_crowd(t_end=6.0, lambda_q=8.0, spike_factor=10.0)
        graph = barabasi_albert_graph(120, attach=2, seed=21)
        workload = scenario.compile(graph, rng=1)
        card, violations = run_measured(scenario, workload, graph, seed=0)
        assert violations == [], [str(v) for v in violations]
        assert card.engine == "measured"
        assert card.requests > 0
        assert card.shed_rate == 0.0
        assert card.staleness_spent <= card.staleness_budget

    def test_drift_demo_reconfigures(self):
        metrics = MetricsRegistry()
        card, violations = run_drift_demo(metrics=metrics)
        assert violations == [], [str(v) for v in violations]
        assert card.reconfigurations >= 1
        assert (
            metrics.counter("scenario.reconfigurations").value
            == card.reconfigurations
        )


class TestCli:
    def test_list(self, capsys):
        assert scenarios_main(["list"]) == 0
        assert "flash-crowd" in capsys.readouterr().out

    def test_quick_fuzz_writes_report(self, tmp_path, capsys):
        out = tmp_path / "cards.json"
        code = scenarios_main(
            [
                "fuzz",
                "--seeds",
                "1",
                "--quick",
                "--families",
                "edge-replay,zipf-hotset",
                "--nodes",
                "90",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert len(payload["cards"]) == 4
        assert "all oracles passed" in capsys.readouterr().out

    def test_replay_spec(self, capsys):
        code = scenarios_main(
            [
                "replay",
                "--spec",
                "update-storm(storm_factor=12)",
                "--quick",
                "--nodes",
                "90",
            ]
        )
        assert code == 0
        assert "update-storm" in capsys.readouterr().out

    def test_bad_spec_is_usage_error(self, capsys):
        assert scenarios_main(["replay", "--spec", "nope", "--quick"]) == 2

    def test_top_level_cli_delegates(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["scenarios", "list"]) == 0
        assert "flash-crowd" in capsys.readouterr().out
