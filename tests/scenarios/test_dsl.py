"""Scenario DSL: builders, text-spec parsing, compilation invariants."""

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.queueing.workload import QUERY, UPDATE, dynamic_pattern_segments
from repro.scenarios.dsl import (
    FAMILIES,
    Scenario,
    build_scenario,
    cache_buster,
    diurnal,
    edge_replay,
    flash_crowd,
    load_edge_stream,
    paper_pattern,
    parse_scenario,
    update_storm,
    zipf_hotset,
)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, attach=2, seed=3)


class TestBuilders:
    def test_every_family_builds_with_defaults(self):
        for name, builder in FAMILIES.items():
            scenario = builder()
            assert scenario.family == name
            assert scenario.t_end > 0
            assert all(s.duration > 0 for s in scenario.segments)

    def test_flash_crowd_spike_segment(self):
        scenario = flash_crowd(
            t_end=20.0, lambda_q=5.0, spike_factor=40.0, spike_at=0.5
        )
        rates = [s.lambda_q for s in scenario.segments]
        assert max(rates) == pytest.approx(200.0)
        assert rates[0] == pytest.approx(5.0)

    def test_update_storm_carries_epsilon_r(self):
        assert update_storm(epsilon_r=0.4).epsilon_r == pytest.approx(0.4)

    def test_diurnal_rates_oscillate(self):
        scenario = diurnal(lambda_q=20.0, amplitude=0.8)
        rates = [s.lambda_q for s in scenario.segments]
        assert max(rates) > 30.0
        assert min(rates) < 10.0
        assert all(r > 0 for r in rates)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            flash_crowd(spike_factor=1.0)
        with pytest.raises(ValueError):
            update_storm(storm_at=1.5)
        with pytest.raises(ValueError):
            diurnal(amplitude=1.0)
        with pytest.raises(ValueError):
            zipf_hotset(exponent=0.0)
        with pytest.raises(ValueError):
            Scenario(name="x", family="x", segments=())


class TestSpecParsing:
    def test_bare_family(self):
        assert parse_scenario("cache-buster").family == "cache-buster"

    def test_kwargs(self):
        scenario = parse_scenario("flash-crowd(spike_factor=40,spike_at=0.25)")
        assert scenario.family == "flash-crowd"
        assert max(s.lambda_q for s in scenario.segments) == pytest.approx(
            400.0
        )

    def test_string_value(self):
        scenario = parse_scenario("paper-pattern(pattern='balanced')")
        assert scenario.name == "paper:balanced"

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            parse_scenario("tsunami")

    def test_unbalanced_parens(self):
        with pytest.raises(ValueError, match="unbalanced"):
            parse_scenario("flash-crowd(spike_factor=40")

    def test_not_key_value(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_scenario("flash-crowd(40)")

    def test_build_scenario_needs_family(self):
        with pytest.raises(ValueError, match="family"):
            build_scenario({"spike_factor": 40})


class TestCompile:
    def test_sorted_and_in_window(self, graph):
        scenario = flash_crowd(t_end=10.0, lambda_q=8.0, spike_factor=15.0)
        workload = scenario.compile(graph, rng=0)
        arrivals = [r.arrival for r in workload]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < workload.t_end for a in arrivals)
        assert workload.num_queries > 0 and workload.num_updates > 0

    def test_cache_buster_sources_balanced(self, graph):
        scenario = cache_buster(t_end=60.0, lambda_q=30.0, lambda_u=0.5)
        workload = scenario.compile(graph, rng=1)
        counts: dict[int, int] = {}
        for r in workload:
            if r.kind == QUERY:
                counts[r.source] = counts.get(r.source, 0) + 1
        # round-robin over a fixed permutation: per-node counts differ
        # by at most one — the defining anti-cache property
        assert max(counts.values()) - min(counts.values()) <= 1
        assert len(counts) == graph.num_nodes

    def test_zipf_sources_skewed_and_shifting(self, graph):
        scenario = zipf_hotset(
            t_end=40.0, lambda_q=50.0, lambda_u=0.0, exponent=1.4, shift_at=0.5
        )
        workload = scenario.compile(graph, rng=2)
        shift_t = 20.0
        early: dict[int, int] = {}
        late: dict[int, int] = {}
        for r in workload:
            if r.kind != QUERY:
                continue
            bucket = early if r.arrival < shift_t else late
            bucket[r.source] = bucket.get(r.source, 0) + 1
        total_early = sum(early.values())
        top_early = max(early.values())
        # heavily skewed: the hottest source dwarfs the uniform share
        assert top_early / total_early > 5.0 / graph.num_nodes
        # the hot set re-rolls at the shift: the early top-5 should not
        # all stay in the late top-5 (independent permutations)
        top5_early = set(sorted(early, key=early.get, reverse=True)[:5])
        top5_late = set(sorted(late, key=late.get, reverse=True)[:5])
        assert top5_early != top5_late

    def test_edge_replay_preserves_stream_order(self, graph):
        stream = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
        scenario = edge_replay(t_end=12.0, lambda_q=2.0, edges=stream)
        workload = scenario.compile(graph, rng=3)
        replayed = [
            (r.update.u, r.update.v) for r in workload if r.kind == UPDATE
        ]
        assert replayed == stream[: len(replayed)]
        assert len(replayed) > 0

    def test_edge_replay_synthesizes_without_stream(self, graph):
        scenario = edge_replay(t_end=12.0, lambda_q=2.0, stream_size=40)
        workload = scenario.compile(graph, rng=4)
        updates = [r for r in workload if r.kind == UPDATE]
        assert 0 < len(updates) <= 40
        assert all(r.update.u != r.update.v for r in updates)

    def test_edge_replay_loads_snap_file(self, graph, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("# comment\n0 1\n2 3\n\n4 5\n")
        assert load_edge_stream(path) == [(0, 1), (2, 3), (4, 5)]
        scenario = edge_replay(t_end=8.0, lambda_q=2.0, path=path)
        assert scenario.edge_stream == ((0, 1), (2, 3), (4, 5))
        bad = tmp_path / "bad.txt"
        bad.write_text("nonsense\n")
        with pytest.raises(ValueError, match="expected 'u v'"):
            load_edge_stream(bad)

    def test_paper_pattern_matches_generator(self):
        scenario = paper_pattern("update-declined", t_end=30.0, seg_seed=9)
        expected = dynamic_pattern_segments("update-declined", 30.0, rng=9)
        assert list(scenario.segments) == expected

    def test_compile_deterministic(self, graph):
        scenario = update_storm(t_end=10.0)
        a = scenario.compile(graph, rng=np.random.default_rng(5))
        b = scenario.compile(graph, rng=np.random.default_rng(5))
        assert [(r.arrival, r.kind) for r in a] == [
            (r.arrival, r.kind) for r in b
        ]
