"""Oracle checkers: healthy replays pass, seeded defects are caught."""

import pytest

from repro.cache.store import PPRCache, make_key
from repro.graph.generators import barabasi_albert_graph
from repro.graph.updates import EdgeUpdate
from repro.obs import MetricsRegistry
from repro.queueing.simulator import (
    CompletedRequest,
    FCFSQueueSimulator,
    SimulationResult,
)
from repro.queueing.seed_simulator import SeedAwareQueueSimulator
from repro.queueing.workload import QUERY, UPDATE, Request, Workload
from repro.scenarios.dsl import flash_crowd
from repro.scenarios.fuzz import modeled_service_fn
from repro.scenarios.oracles import (
    check_final_graph,
    check_modeled_equivalence,
    check_runtime_report,
    check_simulation,
    check_staleness_budget,
    check_workload,
)
from repro.serving.runtime import (
    OK,
    SHED,
    ServedRequest,
    ServingReport,
)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(80, attach=2, seed=11)


@pytest.fixture(scope="module")
def workload(graph):
    scenario = flash_crowd(t_end=8.0, lambda_q=10.0, spike_factor=12.0)
    return scenario.compile(graph, rng=0)


class TestWorkloadOracle:
    def test_healthy(self, workload):
        assert check_workload("s", workload) == []

    def test_out_of_window_arrival(self, graph):
        bad = Workload(
            [Request(5.0, QUERY, source=0)], 2.0, 1.0, 0.0
        )
        violations = check_workload("s", bad)
        assert any(v.oracle == "arrival-window" for v in violations)


class TestSimulationOracle:
    def test_healthy_fcfs(self, workload):
        result = FCFSQueueSimulator(
            modeled_service_fn(), modeled=True
        ).run(workload)
        assert check_simulation("s", "fcfs", workload, result, 1) == []

    def test_dropped_completion_is_conservation_violation(self, workload):
        result = FCFSQueueSimulator(
            modeled_service_fn(), modeled=True
        ).run(workload)
        tampered = SimulationResult(result.completed[:-1], result.t_end)
        violations = check_simulation("s", "fcfs", workload, tampered, 1)
        assert any(v.oracle == "conservation" for v in violations)

    def test_time_travel_is_monotonicity_violation(self, workload):
        result = FCFSQueueSimulator(
            modeled_service_fn(), modeled=True
        ).run(workload)
        first = result.completed[0]
        tampered = SimulationResult(
            [
                CompletedRequest(
                    first.request,
                    first.request.arrival - 1.0,
                    first.finish,
                    first.service,
                )
            ]
            + result.completed[1:],
            result.t_end,
        )
        violations = check_simulation("s", "fcfs", workload, tampered, 1)
        assert any(v.oracle == "time-monotone" for v in violations)

    def test_manufactured_capacity_is_violation(self, workload):
        # every request served instantly at arrival: busy time would
        # exceed one server's horizon only if service overlapped, so
        # fake overlapping service on a single server
        completed = [
            CompletedRequest(r, r.arrival, r.arrival + 5.0, 5.0)
            for r in workload
        ]
        result = SimulationResult(completed, workload.t_end)
        violations = check_simulation("s", "fcfs", workload, result, 1)
        assert any(v.oracle == "capacity" for v in violations)


class TestDifferentialOracles:
    def test_fcfs_coincides_with_seed_at_zero_budget(self, graph, workload):
        service = modeled_service_fn()
        fcfs = FCFSQueueSimulator(service, modeled=True).run(workload)
        seed = SeedAwareQueueSimulator(
            service, graph.copy(), epsilon_r=0.0, servers=1
        ).run(workload)
        assert check_modeled_equivalence("s", fcfs, seed) == []

    def test_divergent_timeline_is_caught(self, graph, workload):
        fcfs = FCFSQueueSimulator(
            modeled_service_fn(), modeled=True
        ).run(workload)
        slower = FCFSQueueSimulator(
            modeled_service_fn(query_s=0.05), modeled=True
        ).run(workload)
        assert check_modeled_equivalence("s", fcfs, slower)

    def test_final_graph_differential(self, graph):
        a = graph.copy()
        b = graph.copy()
        assert check_final_graph("s", "e", a, b) == []
        EdgeUpdate(0, 1).apply(b)
        violations = check_final_graph("s", "e", a, b)
        assert violations and "differ" in violations[0].detail


class TestRuntimeReportOracle:
    def _report(self, records):
        return ServingReport(
            records=records, wall_s=1.0, workers=2, degraded=False
        )

    def test_shed_under_capacity_is_violation(self, graph):
        request = Request(0.0, QUERY, source=1)
        records = [
            ServedRequest(request, SHED, 0.0, 0.0, 0.0, shed_reason="full")
        ]
        violations = check_runtime_report(
            "s",
            self._report(records),
            submitted=1,
            initial_graph=graph.copy(),
            final_graph=graph,
            under_capacity=True,
        )
        assert any(
            v.oracle == "no-shed-under-capacity" for v in violations
        )

    def test_version_replay_mismatch_is_violation(self, graph):
        # report claims an applied update that the final graph lacks
        update = Request(0.0, UPDATE, update=EdgeUpdate(2, 3))
        records = [
            ServedRequest(update, OK, 0.0, 0.0, 0.1, version=graph.version + 1)
        ]
        violations = check_runtime_report(
            "s",
            self._report(records),
            submitted=1,
            initial_graph=graph.copy(),
            final_graph=graph,
            under_capacity=True,
        )
        assert any(
            v.oracle == "final-graph-differential" for v in violations
        )

    def test_duplicate_versions_are_violation(self, graph):
        records = [
            ServedRequest(
                Request(0.0, UPDATE, update=EdgeUpdate(2, 3)),
                OK, 0.0, 0.0, 0.1, version=5,
            ),
            ServedRequest(
                Request(0.0, UPDATE, update=EdgeUpdate(3, 4)),
                OK, 0.0, 0.0, 0.1, version=5,
            ),
        ]
        violations = check_runtime_report(
            "s",
            self._report(records),
            submitted=2,
            initial_graph=graph.copy(),
            final_graph=graph,
            under_capacity=True,
        )
        assert any(v.oracle == "version-order" for v in violations)


class TestStalenessOracle:
    def test_healthy_cache_passes(self):
        cache = PPRCache(epsilon_c=0.2, metrics=MetricsRegistry())
        cache.insert(make_key(1, "a", {}), None, version=0)
        cache.charge_staleness(lambda entry: 0.05)
        assert check_staleness_budget("s", "e", cache) == []

    def test_over_budget_entry_is_caught(self):
        cache = PPRCache(epsilon_c=0.2, metrics=MetricsRegistry())
        key = make_key(1, "a", {})
        cache.insert(key, None, version=0)
        entry = cache.lookup(key)
        entry.staleness = 0.5  # simulate a charging bug
        violations = check_staleness_budget("s", "e", cache)
        assert violations and violations[0].oracle == "staleness-budget"
