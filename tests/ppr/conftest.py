"""Shared fixtures for PPR tests."""

import pytest

from repro.graph import barabasi_albert_graph, erdos_renyi_graph
from repro.ppr import PPRParams


@pytest.fixture
def small_ba_graph():
    """A 120-node power-law graph (fresh copy per test)."""
    return barabasi_albert_graph(120, attach=3, seed=11)


@pytest.fixture
def small_er_graph():
    return erdos_renyi_graph(80, m=400, seed=12)


@pytest.fixture
def params():
    """Paper parameters with a test-friendly walk cap."""
    return PPRParams(alpha=0.2, epsilon=0.5, walk_cap=4000)
