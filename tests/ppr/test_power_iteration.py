"""Tests for the exact power-iteration oracle."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, complete_graph, ring_graph, star_graph
from repro.ppr import ppr_exact, ppr_exact_all_pairs

ALPHA = 0.2


class TestAnalyticValues:
    def test_two_node_cycle(self):
        """0 -> 1 -> 0: closed-form geometric series."""
        g = DynamicGraph.from_edges([(0, 1), (1, 0)])
        pi = ppr_exact(g, 0, alpha=ALPHA)
        denom = 1 - (1 - ALPHA) ** 2
        assert pi[0] == pytest.approx(ALPHA / denom, abs=1e-9)
        assert pi[1] == pytest.approx(ALPHA * (1 - ALPHA) / denom, abs=1e-9)

    def test_directed_ring(self):
        """pi(0, t) = alpha (1-a)^d / (1 - (1-a)^n) on a directed n-ring."""
        n = 5
        g = ring_graph(n)
        pi = ppr_exact(g, 0, alpha=ALPHA)
        denom = 1 - (1 - ALPHA) ** n
        for d in range(n):
            assert pi[d] == pytest.approx(
                ALPHA * (1 - ALPHA) ** d / denom, abs=1e-9
            )

    def test_dangling_node(self):
        """0 -> 1 with 1 dangling: mass splits alpha / (1 - alpha)."""
        g = DynamicGraph.from_edges([(0, 1)])
        pi = ppr_exact(g, 0, alpha=ALPHA)
        assert pi[0] == pytest.approx(ALPHA, abs=1e-9)
        assert pi[1] == pytest.approx(1 - ALPHA, abs=1e-9)

    def test_isolated_source(self):
        g = DynamicGraph(num_nodes=3)
        pi = ppr_exact(g, 1, alpha=ALPHA)
        assert pi[1] == pytest.approx(1.0, abs=1e-9)
        assert pi[0] == 0.0

    def test_complete_graph_symmetry(self):
        g = complete_graph(6)
        pi = ppr_exact(g, 0, alpha=ALPHA)
        others = [pi[v] for v in range(1, 6)]
        assert max(others) - min(others) < 1e-12
        assert pi[0] > others[0]  # source holds at least alpha

    def test_star_hub_vs_leaf(self):
        g = star_graph(5)
        pi_hub = ppr_exact(g, 0, alpha=ALPHA)
        # leaves are symmetric from the hub
        leaf_values = [pi_hub[v] for v in range(1, 5)]
        assert max(leaf_values) - min(leaf_values) < 1e-12


class TestDistributionProperties:
    def test_sums_to_one(self):
        g = ring_graph(10)
        pi = ppr_exact(g, 3, alpha=ALPHA)
        assert pi.total_mass() == pytest.approx(1.0, abs=1e-9)

    def test_source_at_least_alpha(self):
        g = complete_graph(4)
        for s in range(4):
            assert ppr_exact(g, s, alpha=ALPHA)[s] >= ALPHA - 1e-12

    def test_nonnegative(self):
        g = star_graph(7)
        pi = ppr_exact(g, 2, alpha=ALPHA)
        assert all(pi[v] >= 0 for v in range(7))


class TestAllPairs:
    def test_matches_single_source(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
        matrix = ppr_exact_all_pairs(g, alpha=ALPHA)
        for s in range(3):
            pi = ppr_exact(g, s, alpha=ALPHA)
            for t in range(3):
                assert matrix[s, t] == pytest.approx(pi[t], abs=1e-9)

    def test_rows_sum_to_one(self):
        g = ring_graph(6)
        matrix = ppr_exact_all_pairs(g, alpha=ALPHA)
        assert np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9)

    def test_empty_graph(self):
        assert ppr_exact_all_pairs(DynamicGraph()).shape == (0, 0)
