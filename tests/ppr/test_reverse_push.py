"""Tests for Reverse Push and its backward invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph, barabasi_albert_graph, ring_graph
from repro.ppr import csr_view, ppr_exact_all_pairs, reverse_push

ALPHA = 0.2


class TestBasics:
    def test_reserve_lower_bounds_ppr(self):
        g = barabasi_albert_graph(50, attach=2, seed=6)
        view = csr_view(g)
        target = 0
        result = reverse_push(view, view.to_index(target), ALPHA, 1e-5)
        pi_all = ppr_exact_all_pairs(g, alpha=ALPHA)
        for s in range(50):
            i = view.to_index(s)
            assert result.reserve[i] <= pi_all[i, view.to_index(target)] + 1e-9

    def test_tiny_threshold_approaches_exact(self):
        g = ring_graph(6)
        view = csr_view(g)
        result = reverse_push(view, 0, ALPHA, 1e-12)
        pi_all = ppr_exact_all_pairs(g, alpha=ALPHA)
        np.testing.assert_allclose(result.reserve, pi_all[:, 0], atol=1e-9)

    def test_huge_threshold_no_pushes(self):
        g = ring_graph(4)
        view = csr_view(g)
        result = reverse_push(view, 0, ALPHA, 1.5)
        assert result.pushes == 0
        assert result.residue[0] == 1.0

    def test_max_pushes_cap(self):
        g = barabasi_albert_graph(100, attach=3, seed=7)
        view = csr_view(g)
        result = reverse_push(view, 0, ALPHA, 1e-9, max_pushes=5)
        assert result.pushes == 5

    def test_no_in_neighbors(self):
        """A source-only node: its reverse push stays local."""
        g = DynamicGraph.from_edges([(0, 1)])
        view = csr_view(g)
        result = reverse_push(view, view.to_index(0), ALPHA, 1e-9)
        # only node 0 can reach node 0
        assert result.reserve[view.to_index(1)] == 0.0
        assert result.reserve[view.to_index(0)] == pytest.approx(
            ALPHA, abs=1e-9
        )

    def test_empty_graph(self):
        view = csr_view(DynamicGraph())
        result = reverse_push(view, 0, ALPHA, 0.1)
        assert result.pushes == 0


# ----------------------------------------------------------------------
# Property: pi(s, t) = reserve_b(s) + sum_v pi(s, v) residue_b(v).
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
        min_size=1,
        max_size=20,
    ),
    target=st.integers(0, 6),
    r_max_exp=st.integers(-6, -1),
)
def test_reverse_invariant_against_exact(edges, target, r_max_exp):
    g = DynamicGraph(num_nodes=7)
    for u, v in edges:
        if u != v:
            g.add_edge(u, v)
    view = csr_view(g)
    t = view.to_index(target)
    result = reverse_push(view, t, ALPHA, 10.0**r_max_exp)
    pi_all = ppr_exact_all_pairs(g, alpha=ALPHA)
    reconstructed = result.reserve + pi_all @ result.residue
    np.testing.assert_allclose(reconstructed, pi_all[:, t], atol=1e-8)
