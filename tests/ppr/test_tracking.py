"""Tests for fixed-source PPR tracking (exact invariant maintenance)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DynamicGraph,
    EdgeUpdate,
    barabasi_albert_graph,
    random_update_stream,
)
from repro.ppr import PPRParams, ppr_exact, ppr_exact_all_pairs
from repro.ppr.tracking import TrackedPPR, signed_forward_push
from repro.ppr.csr import csr_view

ALPHA = 0.2


def invariant_error(tracker, graph):
    """Max deviation of p + sum r(w) pi_w from pi_s (exact check)."""
    pi_all = ppr_exact_all_pairs(graph, alpha=ALPHA)
    view = csr_view(graph)
    s = view.to_index(tracker.source)
    reconstructed = tracker.reserve + tracker.residue @ pi_all
    return float(np.max(np.abs(reconstructed - pi_all[s])))


class TestSignedForwardPush:
    def test_matches_unsigned_push_for_positive_residue(self):
        from repro.ppr import forward_push

        graph = barabasi_albert_graph(50, attach=2, seed=1)
        view = csr_view(graph)
        reserve = np.zeros(view.n)
        residue = np.zeros(view.n)
        residue[0] = 1.0
        signed_forward_push(view, residue, reserve, ALPHA, 1e-5)
        reference = forward_push(view, 0, ALPHA, 1e-5)
        np.testing.assert_allclose(reserve, reference.reserve, atol=1e-12)
        np.testing.assert_allclose(residue, reference.residue, atol=1e-12)

    def test_negative_residue_drains(self):
        graph = barabasi_albert_graph(50, attach=2, seed=2)
        view = csr_view(graph)
        reserve = np.zeros(view.n)
        residue = np.zeros(view.n)
        residue[0] = -1.0
        signed_forward_push(view, residue, reserve, ALPHA, 1e-6)
        degs = np.maximum(view.out_deg, 1)
        assert np.all(np.abs(residue) <= 1e-6 * degs + 1e-15)
        # total mass conserved (and negative)
        assert reserve.sum() + residue.sum() == pytest.approx(-1.0)

    def test_mixed_signs_cancel_correctly(self):
        graph = barabasi_albert_graph(40, attach=2, seed=3)
        view = csr_view(graph)
        reserve = np.zeros(view.n)
        residue = np.zeros(view.n)
        residue[0] = 0.5
        residue[1] = -0.5
        signed_forward_push(view, residue, reserve, ALPHA, 1e-7)
        assert reserve.sum() + residue.sum() == pytest.approx(0.0, abs=1e-12)


class TestTrackedPPR:
    def test_initial_estimate_accurate(self):
        graph = barabasi_albert_graph(60, attach=2, seed=4)
        tracker = TrackedPPR(graph, 0, PPRParams(walk_cap=3000), seed=0)
        exact = ppr_exact(graph, 0, alpha=ALPHA)
        estimate = tracker.estimate()
        assert max(
            abs(estimate[v] - exact[v]) for v in range(60)
        ) < 0.01

    def test_invariant_exact_after_updates(self):
        graph = barabasi_albert_graph(30, attach=2, seed=5)
        tracker = TrackedPPR(graph, 0, PPRParams(walk_cap=500), seed=1)
        stream = random_update_stream(graph, 20, rng=random.Random(6))
        for i in range(20):
            tracker.apply_update(stream[i])
        assert invariant_error(tracker, graph) < 1e-12

    def test_estimate_tracks_after_updates(self):
        graph = barabasi_albert_graph(60, attach=2, seed=7)
        tracker = TrackedPPR(
            graph, 0, PPRParams(walk_cap=3000), r_max=1e-5, seed=2
        )
        stream = random_update_stream(graph, 30, rng=random.Random(8))
        for i in range(30):
            tracker.apply_update(stream[i])
        exact = ppr_exact(graph, 0, alpha=ALPHA)
        estimate = tracker.estimate()
        assert max(
            abs(estimate[v] - exact[v]) for v in range(60)
        ) < 0.02
        assert tracker.updates_applied == 30

    def test_residual_mass_stays_bounded(self):
        graph = barabasi_albert_graph(50, attach=2, seed=9)
        tracker = TrackedPPR(graph, 0, PPRParams(walk_cap=500), seed=3)
        stream = random_update_stream(graph, 40, rng=random.Random(10))
        for i in range(40):
            tracker.apply_update(stream[i])
        # re-pushing keeps |r|_1 small (each entry <= r_max * deg)
        assert tracker.residual_mass() < 1.0

    def test_refresh_resets(self):
        graph = barabasi_albert_graph(40, attach=2, seed=11)
        tracker = TrackedPPR(graph, 0, PPRParams(walk_cap=500), seed=4)
        EdgeUpdate(0, 20).apply(graph)
        tracker.refresh()
        assert invariant_error(tracker, graph) < 1e-12

    def test_new_node_rejected(self):
        graph = barabasi_albert_graph(40, attach=2, seed=12)
        tracker = TrackedPPR(graph, 0, PPRParams(walk_cap=500), seed=5)
        with pytest.raises(ValueError, match="fixed node set"):
            tracker.apply_update(EdgeUpdate(0, 999))

    def test_invalid_r_max(self):
        graph = barabasi_albert_graph(40, attach=2, seed=13)
        with pytest.raises(ValueError):
            TrackedPPR(graph, 0, r_max=0.0)

    def test_dangling_transitions(self):
        """Updates that create/destroy dangling nodes keep exactness."""
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        tracker = TrackedPPR(graph, 0, PPRParams(walk_cap=500),
                             r_max=1e-7, seed=6)
        tracker.apply_update(EdgeUpdate(1, 2))  # delete -> 1 dangling
        assert invariant_error(tracker, graph) < 1e-12
        tracker.apply_update(EdgeUpdate(1, 0))  # insert from dangling
        assert invariant_error(tracker, graph) < 1e-12


@settings(max_examples=20, deadline=None)
@given(
    toggles=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
            lambda t: t[0] != t[1]
        ),
        min_size=1,
        max_size=12,
    ),
    source=st.integers(0, 7),
)
def test_tracking_invariant_property(toggles, source):
    """The exact invariant survives arbitrary toggle sequences."""
    graph = barabasi_albert_graph(8, attach=2, seed=14)
    tracker = TrackedPPR(
        graph, source, PPRParams(walk_cap=200), r_max=1e-6, seed=7
    )
    for u, v in toggles:
        tracker.apply_update(EdgeUpdate(u, v))
    assert invariant_error(tracker, graph) < 1e-10
