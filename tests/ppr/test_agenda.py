"""Tests for Agenda's lazy index maintenance."""

import numpy as np
import pytest

from repro.graph import EdgeUpdate
from repro.ppr import Agenda, ppr_exact


class TestAgendaQuery:
    def test_query_accuracy_static(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        estimate = alg.query(0)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.03

    def test_query_accuracy_after_updates(self, small_ba_graph, params):
        """The lazy refresh must keep post-update queries accurate."""
        alg = Agenda(small_ba_graph, params)
        alg.seed(1)
        rng = np.random.default_rng(5)
        for _ in range(20):
            u, v = rng.integers(0, 120, size=2)
            if u != v:
                alg.apply_update(EdgeUpdate(int(u), int(v)))
        exact = ppr_exact(alg.graph, 0, alpha=params.alpha)
        estimate = alg.query(0)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.05

    def test_timers_cover_all_subprocesses(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        alg.apply_update(EdgeUpdate(0, 30))
        alg.query(0)
        for name in (
            "Forward Push",
            "Lazy Index Update",
            "Random Walk",
            "Reverse Push",
            "Index Inaccuracy Update",
        ):
            assert alg.timers.count(name) >= 1, name


class TestInaccuracyTracking:
    def test_update_raises_sigma(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        assert alg.sigma.sum() == 0.0
        alg.apply_update(EdgeUpdate(0, 30))
        assert alg.sigma.sum() > 0.0

    def test_no_rebuild_on_update(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        builds_before = alg.timers.count("Index Build")
        alg.apply_update(EdgeUpdate(0, 30))
        assert alg.timers.count("Index Build") == builds_before

    def test_lazy_refresh_resets_sigma(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params, theta=1e-6)  # hair-trigger
        alg.seed(2)
        for v in (30, 40, 50):
            alg.apply_update(EdgeUpdate(0, v))
        sigma_before = alg.sigma.sum()
        alg.query(0)
        assert alg.last_query_stats.refreshed_nodes > 0
        assert alg.sigma.sum() < sigma_before

    def test_higher_tolerance_refreshes_fewer_nodes(self, small_ba_graph, params):
        """The theta budget modulates how much lazy work a query does.

        The tracked sigma bound is deliberately conservative (truncated
        reverse push slack applied to all nodes), so even theta = 1
        refreshes *something* after an update — but strictly less than
        a hair-trigger budget does.
        """
        relaxed = Agenda(small_ba_graph, params, theta=1.0)
        strict = Agenda(small_ba_graph.copy(), params, theta=1e-9)
        for alg in (relaxed, strict):
            alg.seed(3)
            alg.apply_update(EdgeUpdate(0, 30))
            alg.query(0)
        assert (
            relaxed.last_query_stats.refreshed_nodes
            <= strict.last_query_stats.refreshed_nodes
        )
        assert strict.last_query_stats.refreshed_nodes > 0

    def test_invalid_theta(self, small_ba_graph, params):
        with pytest.raises(ValueError):
            Agenda(small_ba_graph, params, theta=0.0)
        with pytest.raises(ValueError):
            Agenda(small_ba_graph, params, theta=1.5)


class TestHyperparameters:
    def test_defaults_match_paper(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        k = params.num_walks(120)
        assert alg.r_max == pytest.approx(1.0 / (params.alpha * k))
        assert alg.r_max_b == pytest.approx(1.0 / 120)

    def test_two_hyperparameters(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        assert alg.hyperparameter_names == ("r_max", "r_max_b")
        alg.set_hyperparameters(r_max=0.01, r_max_b=0.005)
        assert alg.get_hyperparameters() == {"r_max": 0.01, "r_max_b": 0.005}

    def test_hyperparameter_change_rebuilds_and_resets(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        alg.apply_update(EdgeUpdate(0, 30))
        assert alg.sigma.sum() > 0
        alg.set_hyperparameters(r_max=alg.r_max / 2)
        assert alg.sigma.sum() == 0.0

    def test_smaller_r_max_b_more_reverse_work(self, small_ba_graph, params):
        alg = Agenda(small_ba_graph, params)
        alg.set_hyperparameters(r_max_b=0.5)
        alg.apply_update(EdgeUpdate(0, 30))
        coarse = alg.timers.total("Reverse Push")
        alg.timers.reset()
        alg.set_hyperparameters(r_max_b=1e-6)
        alg.apply_update(EdgeUpdate(1, 31))
        fine = alg.timers.total("Reverse Push")
        assert fine > coarse
