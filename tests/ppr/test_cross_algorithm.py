"""Cross-algorithm contract tests: every base algorithm obeys the same
interface and stays accurate through an update stream."""

import random

import numpy as np
import pytest

from repro.graph import EdgeUpdate, barabasi_albert_graph, random_update_stream
from repro.ppr import ALGORITHMS, PPRParams, ppr_exact

SSPPR_ALGORITHMS = [
    name for name in ALGORITHMS if name not in ("FORA-TopK", "TopPPR")
]


@pytest.fixture
def graph():
    return barabasi_albert_graph(100, attach=3, seed=21)


@pytest.fixture
def params():
    return PPRParams(walk_cap=3000)


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_registry_instantiates(name, graph, params):
    alg = ALGORITHMS[name](graph.copy(), params)
    assert alg.name == name
    hps = alg.get_hyperparameters()
    assert set(hps) == set(alg.hyperparameter_names)
    assert all(0 < v < 1 for v in hps.values())


@pytest.mark.parametrize("name", SSPPR_ALGORITHMS)
def test_accuracy_through_update_stream(name, graph, params):
    """Interleave updates and queries; estimates must track the live graph."""
    alg = ALGORITHMS[name](graph.copy(), params)
    alg.seed(0)
    stream = random_update_stream(alg.graph, 12, rng=random.Random(7))
    for i in range(12):
        alg.apply_update(stream[i])
        if i % 4 == 3:
            exact = ppr_exact(alg.graph, 0, alpha=params.alpha)
            estimate = alg.query(0)
            worst = max(abs(estimate[v] - exact[v]) for v in range(100))
            assert worst < 0.06, f"{name} drifted after update {i}"


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_estimates_nonnegative_and_bounded(name, graph, params):
    alg = ALGORITHMS[name](graph.copy(), params)
    alg.seed(1)
    estimate = alg.query(2)
    values = estimate.values
    assert np.all(values >= 0)
    assert values.sum() < 1.2


@pytest.mark.parametrize("name", SSPPR_ALGORITHMS)
def test_source_dominates(name, graph, params):
    """pi(s, s) >= alpha must survive estimation."""
    alg = ALGORITHMS[name](graph.copy(), params)
    alg.seed(2)
    estimate = alg.query(7)
    assert estimate[7] >= params.alpha * 0.8


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_seeded_runs_reproducible(name, graph, params):
    a = ALGORITHMS[name](graph.copy(), params)
    b = ALGORITHMS[name](graph.copy(), params)
    a.seed(42)
    b.seed(42)
    ea = a.query(0)
    eb = b.query(0)
    np.testing.assert_allclose(ea.values, eb.values)
