"""Golden regression tests: exact PPR values on fixed graphs.

These pin the oracle (and hence every accuracy comparison in the
repository) to hand-checkable numbers, so a silent change in the
dangling convention, the transition matrix, or the series accumulation
cannot slip through.
"""

import pytest

from repro.graph import DynamicGraph, ring_graph, star_graph
from repro.ppr import ppr_exact

ALPHA = 0.2


class TestGoldenValues:
    def test_two_cycle(self):
        """0 <-> 1: pi(0,0) = a/(1-(1-a)^2) = 0.2/0.36 = 5/9."""
        g = DynamicGraph.from_edges([(0, 1), (1, 0)])
        pi = ppr_exact(g, 0, alpha=ALPHA)
        assert pi[0] == pytest.approx(5 / 9, abs=1e-12)
        assert pi[1] == pytest.approx(4 / 9, abs=1e-12)

    def test_chain_with_dangling_tail(self):
        """0 -> 1 -> 2 (2 dangling):
        pi(0,0) = 0.2, pi(0,1) = 0.8*0.2 = 0.16, pi(0,2) = 0.64."""
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        pi = ppr_exact(g, 0, alpha=ALPHA)
        assert pi[0] == pytest.approx(0.2, abs=1e-12)
        assert pi[1] == pytest.approx(0.16, abs=1e-12)
        assert pi[2] == pytest.approx(0.64, abs=1e-12)

    def test_directed_triangle(self):
        """0 -> 1 -> 2 -> 0: pi(0,0) = a/(1-(1-a)^3) = 0.2/0.488."""
        g = ring_graph(3)
        pi = ppr_exact(g, 0, alpha=ALPHA)
        denom = 1 - 0.8**3
        assert pi[0] == pytest.approx(0.2 / denom, abs=1e-12)
        assert pi[1] == pytest.approx(0.2 * 0.8 / denom, abs=1e-12)
        assert pi[2] == pytest.approx(0.2 * 0.64 / denom, abs=1e-12)

    def test_star_from_leaf(self):
        """Leaf -> hub -> leaves: closed forms from the 2-step recurrence.

        From leaf 1 of a 4-leaf star (hub 0), the end-at-hub probability
        y satisfies y = (1-a)(a + (1-a)y), giving y = 4/9 at a = 0.2;
        the remaining mass splits as 13/45 on the source leaf and 4/45
        on each other leaf (solving the symmetric linear system).
        """
        g = star_graph(5)  # hub 0, leaves 1..4
        pi = ppr_exact(g, 1, alpha=ALPHA)
        assert pi[0] == pytest.approx(4 / 9, abs=1e-12)
        assert pi[1] == pytest.approx(13 / 45, abs=1e-12)
        for v in (2, 3, 4):
            assert pi[v] == pytest.approx(4 / 45, abs=1e-12)
        assert pi.total_mass() == pytest.approx(1.0, abs=1e-10)

    def test_self_loop_only(self):
        g = DynamicGraph.from_edges([(0, 0)])
        pi = ppr_exact(g, 0, alpha=ALPHA)
        assert pi[0] == pytest.approx(1.0, abs=1e-12)
