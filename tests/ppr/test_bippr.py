"""Tests for single-pair bidirectional PPR estimation."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, barabasi_albert_graph, ring_graph
from repro.ppr import PPRParams, ppr_exact, ppr_single_pair

ALPHA = 0.2


class TestAccuracy:
    def test_matches_exact_on_ring(self):
        graph = ring_graph(6)
        exact = ppr_exact(graph, 0, alpha=ALPHA)
        estimate = ppr_single_pair(
            graph, 0, 2, r_max_b=1e-8, num_walks=200, rng=0
        )
        # with a tiny backward threshold the estimate is nearly exact
        assert estimate.value == pytest.approx(exact[2], abs=1e-4)

    def test_reasonable_on_powerlaw(self):
        graph = barabasi_albert_graph(150, attach=3, seed=8)
        exact = ppr_exact(graph, 5, alpha=ALPHA)
        target = exact.top_k(3)[1][0]  # a high-PPR target
        estimate = ppr_single_pair(
            graph, 5, target, num_walks=4000, rng=1
        )
        assert estimate.value == pytest.approx(exact[target], rel=0.35)

    def test_source_self_pair(self):
        graph = barabasi_albert_graph(60, attach=2, seed=9)
        exact = ppr_exact(graph, 3, alpha=ALPHA)
        estimate = ppr_single_pair(
            graph, 3, 3, r_max_b=1e-6, num_walks=2000, rng=2
        )
        assert estimate.value == pytest.approx(exact[3], rel=0.1)

    def test_unreachable_target_is_zero(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        estimate = ppr_single_pair(
            graph, 0, 3, r_max_b=1e-9, num_walks=500, rng=3
        )
        assert estimate.value == pytest.approx(0.0, abs=1e-6)


class TestMechanics:
    def test_components_sum_to_value(self):
        graph = barabasi_albert_graph(80, attach=2, seed=10)
        estimate = ppr_single_pair(graph, 0, 7, rng=4)
        assert estimate.value == pytest.approx(
            estimate.backward_reserve + estimate.walk_contribution
        )

    def test_tighter_push_shifts_work_from_walks(self):
        graph = barabasi_albert_graph(80, attach=2, seed=11)
        loose = ppr_single_pair(graph, 0, 7, r_max_b=1e-2, rng=5)
        tight = ppr_single_pair(graph, 0, 7, r_max_b=1e-6, rng=5)
        assert tight.reverse_pushes > loose.reverse_pushes

    def test_deterministic_given_seed(self):
        graph = barabasi_albert_graph(80, attach=2, seed=12)
        a = ppr_single_pair(graph, 0, 9, rng=6)
        b = ppr_single_pair(graph, 0, 9, rng=6)
        assert a.value == b.value

    def test_estimate_nonnegative(self):
        graph = barabasi_albert_graph(80, attach=2, seed=13)
        for target in (1, 20, 50):
            estimate = ppr_single_pair(graph, 0, target, rng=7)
            assert estimate.value >= 0.0


def test_statistical_consistency():
    """Averaged over many seeds the estimator is unbiased."""
    graph = ring_graph(5)
    exact = ppr_exact(graph, 0, alpha=ALPHA)
    values = [
        ppr_single_pair(
            graph, 0, 1, r_max_b=0.05, num_walks=300, rng=seed
        ).value
        for seed in range(30)
    ]
    assert float(np.mean(values)) == pytest.approx(exact[1], rel=0.05)
