"""Tests for Forward Push, including the mass-conservation invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph, barabasi_albert_graph, ring_graph
from repro.ppr import csr_view, forward_push, ppr_exact_all_pairs

ALPHA = 0.2


def run_push(graph, source, r_max):
    view = csr_view(graph)
    return view, forward_push(view, view.to_index(source), ALPHA, r_max)


class TestBasics:
    def test_mass_conservation(self):
        g = barabasi_albert_graph(60, attach=2, seed=3)
        _, result = run_push(g, 0, 1e-4)
        assert result.reserve.sum() + result.residue.sum() == pytest.approx(1.0)

    def test_all_residues_below_threshold(self):
        g = barabasi_albert_graph(60, attach=2, seed=4)
        view, result = run_push(g, 0, 1e-4)
        degs = np.maximum(view.out_deg, 1)
        assert np.all(result.residue <= 1e-4 * degs + 1e-15)

    def test_tiny_r_max_approaches_exact(self):
        g = ring_graph(6)
        view, result = run_push(g, 0, 1e-12)
        exact = ppr_exact_all_pairs(g, alpha=ALPHA)[view.to_index(0)]
        np.testing.assert_allclose(result.reserve, exact, atol=1e-9)

    def test_huge_r_max_no_pushes(self):
        """With r_max >= 1 the source itself is never active."""
        g = ring_graph(4)
        _, result = run_push(g, 0, 1.5)
        assert result.pushes == 0
        assert result.residue.sum() == pytest.approx(1.0)

    def test_smaller_r_max_more_pushes(self):
        g = barabasi_albert_graph(80, attach=2, seed=5)
        _, coarse = run_push(g, 0, 1e-2)
        _, fine = run_push(g, 0, 1e-5)
        assert fine.pushes > coarse.pushes
        assert fine.residue.sum() < coarse.residue.sum()

    def test_dangling_node_accumulates_reserve(self):
        g = DynamicGraph.from_edges([(0, 1)])  # node 1 dangling
        view, result = run_push(g, 0, 1e-10)
        assert result.reserve[view.to_index(0)] == pytest.approx(ALPHA, abs=1e-8)
        assert result.reserve[view.to_index(1)] == pytest.approx(
            1 - ALPHA, abs=1e-8
        )

    def test_isolated_source(self):
        g = DynamicGraph(num_nodes=2)
        view, result = run_push(g, 0, 1e-10)
        assert result.reserve[0] == pytest.approx(1.0, abs=1e-9)

    def test_initial_vectors_reused(self):
        """Passing residue/reserve in continues a previous push."""
        g = ring_graph(8)
        view = csr_view(g)
        first = forward_push(view, 0, ALPHA, 1e-2)
        resumed = forward_push(
            view, 0, ALPHA, 1e-9, residue=first.residue, reserve=first.reserve
        )
        exact = ppr_exact_all_pairs(g, alpha=ALPHA)[0]
        np.testing.assert_allclose(resumed.reserve, exact, atol=1e-6)

    def test_empty_graph(self):
        view = csr_view(DynamicGraph())
        result = forward_push(view, 0, ALPHA, 0.1)
        assert result.pushes == 0


# ----------------------------------------------------------------------
# Property: the FORA invariant pi = reserve + residue . Pi holds exactly.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=25,
    ),
    source=st.integers(0, 7),
    r_max_exp=st.integers(-6, -1),
)
def test_push_invariant_against_exact(edges, source, r_max_exp):
    g = DynamicGraph(num_nodes=8)
    for u, v in edges:
        if u != v:
            g.add_edge(u, v)
    view = csr_view(g)
    result = forward_push(view, view.to_index(source), ALPHA, 10.0**r_max_exp)
    pi_all = ppr_exact_all_pairs(g, alpha=ALPHA)
    # invariant: pi_s = reserve + sum_v residue[v] * pi_v
    reconstructed = result.reserve + result.residue @ pi_all
    np.testing.assert_allclose(
        reconstructed, pi_all[view.to_index(source)], atol=1e-8
    )


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=25,
    ),
    r_max_exp=st.integers(-6, -1),
)
def test_push_mass_and_nonnegativity(edges, r_max_exp):
    g = DynamicGraph(num_nodes=8)
    for u, v in edges:
        g.add_edge(u, v)
    view = csr_view(g)
    result = forward_push(view, 0, ALPHA, 10.0**r_max_exp)
    assert np.all(result.reserve >= 0)
    assert np.all(result.residue >= -1e-15)
    assert result.reserve.sum() + result.residue.sum() == pytest.approx(1.0)
