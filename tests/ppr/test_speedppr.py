"""Tests for SpeedPPR and SpeedPPR+."""

import pytest

from repro.graph import EdgeUpdate
from repro.ppr import SpeedPPR, SpeedPPRPlus, ppr_exact


class TestSpeedPPR:
    def test_query_accuracy(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        estimate = alg.query(0)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.02

    def test_power_iteration_phase_runs(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.query(0)
        assert alg.last_query_stats.extra["sweeps"] >= 1
        assert alg.timers.count("Power Iteration") == 1

    def test_smaller_r_max_more_sweeps(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.seed(1)
        alg.set_hyperparameters(r_max=1e-2)
        alg.query(0)
        coarse_sweeps = alg.last_query_stats.extra["sweeps"]
        alg.set_hyperparameters(r_max=1e-6)
        alg.query(0)
        assert alg.last_query_stats.extra["sweeps"] > coarse_sweeps

    def test_update_is_graph_only(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.apply_update(EdgeUpdate(0, 60))
        assert alg.timers.count("Graph Update") == 1
        assert alg.timers.count("Index Build") == 0

    def test_transition_matrix_cached_between_queries(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.query(0)
        matrix_a = alg._matrix_t
        alg.query(1)
        assert alg._matrix_t is matrix_a
        alg.apply_update(EdgeUpdate(2, 70))
        alg.query(0)
        assert alg._matrix_t is not matrix_a

    def test_query_reflects_update(self, params):
        from repro.graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1), (1, 0)])
        alg = SpeedPPR(g, params)
        alg.seed(2)
        alg.apply_update(EdgeUpdate(0, 2))
        assert alg.query(0)[2] > 0.0


class TestSpeedPPRPlus:
    def test_query_accuracy(self, small_ba_graph, params):
        alg = SpeedPPRPlus(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 3, alpha=params.alpha)
        estimate = alg.query(3)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.03

    def test_update_rebuilds_index(self, small_ba_graph, params):
        alg = SpeedPPRPlus(small_ba_graph, params)
        builds_before = alg.timers.count("Index Build")
        alg.apply_update(EdgeUpdate(0, 40))
        assert alg.timers.count("Index Build") == builds_before + 1

    def test_hyperparameter_change_rebuilds_index(self, small_ba_graph, params):
        alg = SpeedPPRPlus(small_ba_graph, params)
        builds_before = alg.timers.count("Index Build")
        alg.set_hyperparameters(r_max=alg.r_max / 2)
        assert alg.timers.count("Index Build") == builds_before + 1
