"""Tests for SpeedPPR and SpeedPPR+."""

import pytest

from repro.graph import EdgeUpdate
from repro.ppr import SpeedPPR, SpeedPPRPlus, ppr_exact


class TestSpeedPPR:
    def test_query_accuracy(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        estimate = alg.query(0)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.02

    def test_power_iteration_phase_runs(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.query(0)
        assert alg.last_query_stats.extra["sweeps"] >= 1
        assert alg.timers.count("Power Iteration") == 1

    def test_smaller_r_max_more_sweeps(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.seed(1)
        alg.set_hyperparameters(r_max=1e-2)
        alg.query(0)
        coarse_sweeps = alg.last_query_stats.extra["sweeps"]
        alg.set_hyperparameters(r_max=1e-6)
        alg.query(0)
        assert alg.last_query_stats.extra["sweeps"] > coarse_sweeps

    def test_update_is_graph_only(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.apply_update(EdgeUpdate(0, 60))
        assert alg.timers.count("Graph Update") == 1
        assert alg.timers.count("Index Build") == 0

    def test_transition_matrix_cached_between_queries(self, small_ba_graph, params):
        alg = SpeedPPR(small_ba_graph, params)
        alg.query(0)
        matrix_a = alg._matrix_t
        alg.query(1)
        assert alg._matrix_t is matrix_a
        alg.apply_update(EdgeUpdate(2, 70))
        alg.query(0)
        assert alg._matrix_t is not matrix_a

    def test_query_reflects_update(self, params):
        from repro.graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1), (1, 0)])
        alg = SpeedPPR(g, params)
        alg.seed(2)
        alg.apply_update(EdgeUpdate(0, 2))
        assert alg.query(0)[2] > 0.0


class TestSpeedPPRPlus:
    def test_query_accuracy(self, small_ba_graph, params):
        alg = SpeedPPRPlus(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 3, alpha=params.alpha)
        estimate = alg.query(3)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.03

    def test_update_rebuilds_index(self, small_ba_graph, params):
        alg = SpeedPPRPlus(small_ba_graph, params)
        builds_before = alg.timers.count("Index Build")
        alg.apply_update(EdgeUpdate(0, 40))
        assert alg.timers.count("Index Build") == builds_before + 1

    def test_compaction_does_not_rebuild_index(self, small_ba_graph, params):
        """Same-version fresh view object must not force an index
        rebuild (mirror of the ForaPlus regression)."""
        alg = SpeedPPRPlus(small_ba_graph, params)
        alg.seed(1)
        builds_before = alg.timers.count("Index Build")
        small_ba_graph._csr_cache = None
        alg.query(0)
        assert alg.timers.count("Index Build") == builds_before

    def test_hyperparameter_change_rebuilds_index(self, small_ba_graph, params):
        alg = SpeedPPRPlus(small_ba_graph, params)
        builds_before = alg.timers.count("Index Build")
        alg.set_hyperparameters(r_max=alg.r_max / 2)
        assert alg.timers.count("Index Build") == builds_before + 1


class TestBatchedPowerPhaseCap:
    """The documented B = 16 batched power-phase regression.

    The whole-batch SpMM keeps a live ``(n, B)`` float write-set; at
    B = 16 it spills cache and the batch loses to sequential frontier
    runs.  The fix: the dispatcher caps the effective sub-batch size
    from its cost model (calibrated from ``BatchAwareCostModel``)
    instead of honoring the constant ``max_batch`` — and because
    scipy's CSR SpMM accumulates each output column in the same index
    order as the single-vector matvec, the split changes no bits.
    """

    SOURCES = list(range(16))

    def _batch(self, graph, params, monkeypatch=None, budget_rows=None):
        from repro.ppr.dispatch import ENV_RESIDENT_KB, set_dispatcher

        if monkeypatch is not None and budget_rows is not None:
            budget_kb = max(
                (2 * 8 * graph.num_nodes * budget_rows) // 1024, 1
            )
            monkeypatch.setenv(ENV_RESIDENT_KB, str(budget_kb))
        set_dispatcher(None)  # rebuild with the env in effect
        try:
            alg = SpeedPPR(graph, params, engine="batched")
            alg.seed(11)
            results = alg.query_batch(self.SOURCES)
            return results, dict(alg.last_query_stats.extra)
        finally:
            set_dispatcher(None)

    def test_b16_capped_under_tight_residency_budget(
        self, small_ba_graph, params, monkeypatch
    ):
        pytest.importorskip("scipy")
        _, extra = self._batch(
            small_ba_graph, params, monkeypatch, budget_rows=4
        )
        assert extra["backend"] == "spmm"
        assert extra["batch_size"] == 16
        assert extra["effective_batch"] < 16  # no constant max_batch

    def test_b16_runs_whole_when_resident(self, small_ba_graph, params):
        pytest.importorskip("scipy")
        # n = 120: the (n, 16) state is far below the default budget
        _, extra = self._batch(small_ba_graph, params)
        assert extra["effective_batch"] == 16

    def test_capped_batch_is_bit_for_bit(
        self, small_ba_graph, params, monkeypatch
    ):
        pytest.importorskip("scipy")
        whole, _ = self._batch(small_ba_graph, params)
        capped, extra = self._batch(
            small_ba_graph, params, monkeypatch, budget_rows=3
        )
        assert extra["effective_batch"] < 16
        import numpy as np

        for a, b in zip(whole, capped):
            np.testing.assert_array_equal(a.values, b.values)
