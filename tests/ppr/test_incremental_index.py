"""Property and regression tests for incremental walk-index maintenance.

The incremental scheme (repro.ppr.incremental) must be statistically
indistinguishable from the full-rebuild oracle: after any update
sequence, the stored terminals are samples from the *current* graph's
walk law.  The suite checks that three ways:

* a CI-style two-sample bound on aggregate terminal histograms against
  a fresh rebuild at a different seed (statistical equivalence),
* the ``validate_edge_map`` structural oracle plus the per-node count
  invariant after hypothesis-driven update sequences, including
  mid-sequence slack-row growth and forced CSR compaction,
* seeded determinism (two identically-seeded incremental indexes stay
  bit-for-bit equal through the same update stream).
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import barabasi_albert_graph
from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate, random_update_stream
from repro.ppr import ALGORITHMS, PPRParams, csr_view
from repro.ppr.fora import ForaPlusIncremental
from repro.ppr.random_walk import WalkIndex
from repro.ppr.speedppr import SpeedPPRPlusIncremental

ALPHA = 0.2


def make_index(graph, wpu=5.0, seed=2, track=True):
    view = csr_view(graph)
    return WalkIndex(
        view, ALPHA, wpu, np.random.default_rng(seed), track_edges=track
    ), view


def drive_updates(graph, index, count, seed):
    """Apply ``count`` random toggles through the incremental path."""
    stream = random_update_stream(graph, count, rng=random.Random(seed))
    view = index.view
    for update in stream:
        applied = update.apply(graph)
        view = csr_view(graph)
        index.apply_edge_update(
            view, view.to_index(applied.u), view.to_index(applied.v),
            applied.kind,
        )
    return view


def counts_invariant(index, view):
    expected = np.maximum(
        np.ceil(
            index.walks_per_unit * np.maximum(view.out_deg, 1)
        ).astype(np.int64),
        1,
    )
    return bool((index.counts == expected).all())


def aggregate_histogram(index, view):
    terms = np.concatenate(
        [
            index.terminals_for(i, int(index.counts[i]))
            for i in range(view.n)
        ]
    )
    return np.bincount(terms, minlength=view.n).astype(np.float64)


def assert_histograms_close(h1, h2, z=6.0):
    """Two-sample binomial bound per bin: the per-node terminal masses
    of two independent samples of the same law differ by at most
    z * sqrt(p(1-p)(1/n1 + 1/n2)) except with vanishing probability."""
    n1, n2 = h1.sum(), h2.sum()
    p1, p2 = h1 / n1, h2 / n2
    pooled = (h1 + h2) / (n1 + n2)
    bound = z * np.sqrt(
        np.maximum(pooled * (1.0 - pooled), 1e-12) * (1.0 / n1 + 1.0 / n2)
    )
    worst = np.max(np.abs(p1 - p2) - bound)
    assert worst <= 0.0, f"histogram bins exceed the two-sample bound by {worst}"


# ----------------------------------------------------------------------
# distributional equivalence vs the fresh-rebuild oracle
# ----------------------------------------------------------------------
def test_incremental_matches_fresh_rebuild_distribution():
    graph = barabasi_albert_graph(80, 3, seed=11)
    index, view = make_index(graph, wpu=8.0, seed=3)
    view = drive_updates(graph, index, 60, seed=5)

    oracle = WalkIndex(view, ALPHA, 8.0, np.random.default_rng(99))
    assert (index.counts == oracle.counts).all()
    assert_histograms_close(
        aggregate_histogram(index, view), aggregate_histogram(oracle, view)
    )
    assert index.validate_edge_map(view) == []


def test_lazy_map_build_on_untracked_index():
    """An index built without track_edges pays one traced rebuild on
    the first incremental update, then patches in O(affected)."""
    graph = barabasi_albert_graph(30, 2, seed=4)
    index, view = make_index(graph, track=False)
    assert index.edge_map is None
    update = EdgeUpdate(0, 17, "toggle").apply(graph)
    view = csr_view(graph)
    sampled = index.apply_edge_update(
        view, view.to_index(update.u), view.to_index(update.v), update.kind
    )
    assert sampled == index.total_walks  # the lazy full rebuild
    assert index.edge_map is not None
    assert index.validate_edge_map(view) == []


def test_unknown_kind_rejected():
    graph = barabasi_albert_graph(10, 2, seed=0)
    index, view = make_index(graph)
    with pytest.raises(ValueError, match="kind"):
        index.apply_edge_update(view, 0, 1, "toggle")


# ----------------------------------------------------------------------
# hypothesis: structural consistency under arbitrary update sequences
# ----------------------------------------------------------------------
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(8, 40),
    num_updates=st.integers(1, 40),
    wpu=st.floats(0.5, 6.0),
    seed=st.integers(0, 10_000),
    compact_at=st.one_of(st.none(), st.integers(0, 39)),
)
def test_edge_map_consistent_under_update_sequences(
    n, num_updates, wpu, seed, compact_at
):
    graph = barabasi_albert_graph(n, 2, seed=seed % 13)
    index, view = make_index(graph, wpu=wpu, seed=seed)
    stream = random_update_stream(
        graph, num_updates, rng=random.Random(seed + 1)
    )
    for pos, update in enumerate(stream):
        if compact_at == pos:
            # force a fresh CSR store: new view *object*, same graph
            # version — exercises the map across packed/slack views.
            graph._csr_cache = None
        applied = update.apply(graph)
        view = csr_view(graph)
        index.apply_edge_update(
            view, view.to_index(applied.u), view.to_index(applied.v),
            applied.kind,
        )
    assert index.validate_edge_map(view) == []
    assert counts_invariant(index, view)
    assert (index.terminals[:0] >= 0).all()  # shape sanity
    for i in range(view.n):
        row = index.terminals_for(i, int(index.counts[i]))
        assert ((row >= 0) & (row < view.n)).all()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_incremental_is_deterministic_under_seed(seed):
    graphs = [barabasi_albert_graph(25, 2, seed=7) for _ in range(2)]
    indexes = []
    for graph in graphs:
        index, _ = make_index(graph, wpu=3.0, seed=seed)
        drive_updates(graph, index, 15, seed=seed + 1)
        indexes.append(index)
    a, b = indexes
    assert (a.counts == b.counts).all()
    assert (a.offsets == b.offsets).all()
    for i in range(int(a.counts.size)):
        assert (
            a.terminals_for(i, int(a.counts[i]))
            == b.terminals_for(i, int(b.counts[i]))
        ).all()


# ----------------------------------------------------------------------
# degree-churn budget tracking (grow + shrink through the algorithms)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "algo_cls", [ForaPlusIncremental, SpeedPPRPlusIncremental]
)
def test_incremental_algorithms_track_degree_churn(algo_cls):
    graph = barabasi_albert_graph(40, 2, seed=3)
    algorithm = algo_cls(graph, PPRParams(walk_cap=300))
    algorithm.seed(5)
    assert algorithm.index_maintenance == "incremental"
    builds_before = algorithm.timers.count("Index Build")
    stream = random_update_stream(graph, 25, rng=random.Random(9))
    for update in stream:
        algorithm.apply_update(update)
    index = algorithm._walk_index()
    view = algorithm.view
    assert counts_invariant(index, view)
    assert index.validate_edge_map(view) == []
    # updates went through the incremental path, not rebuilds
    assert algorithm.timers.count("Index Update") == 25
    assert algorithm.timers.count("Index Build") == builds_before


def test_registry_exposes_incremental_variants():
    assert ALGORITHMS["FORA+inc"] is ForaPlusIncremental
    assert ALGORITHMS["SpeedPPR+inc"] is SpeedPPRPlusIncremental


def test_dangling_hold_resampled_on_insert():
    """A walk that retired at a then-dangling node must be found (via
    its pseudo-edge) when that node gains an out-edge."""
    graph = DynamicGraph(num_nodes=3)
    graph.add_edge(0, 1)  # node 1 dangling: walks from 1 hold there
    index, view = make_index(graph, wpu=4.0, seed=1)
    one = view.to_index(1)
    assert (index.terminals_for(one, int(index.counts[one])) == one).all()

    applied = EdgeUpdate(1, 2, "insert").apply(graph)
    view = csr_view(graph)
    index.apply_edge_update(
        view, view.to_index(applied.u), view.to_index(applied.v),
        applied.kind,
    )
    two = view.to_index(2)
    terms = index.terminals_for(one, int(index.counts[one]))
    # every held walk either terminated at 1 by a later coin... no:
    # the held walks had *survived* their coin at 1, so they must all
    # have moved to 2 (1's only out-neighbor) before continuing.
    assert (terms != one).any() or int(index.counts[one]) == 0
    assert set(terms.tolist()) <= {one, two}
    assert index.validate_edge_map(view) == []
