"""Statistical validation of the Eq. 1 accuracy guarantee.

Definition 1 promises |pi - pi_hat| <= eps * pi for every pi > delta,
with failure probability p_f.  These tests measure the *empirical*
failure rate of each SSPPR algorithm over many seeded runs and check it
stays below the configured p_f with slack — the end-to-end payoff of
all the push/walk machinery.
"""

import numpy as np
import pytest

from repro.graph import barabasi_albert_graph
from repro.ppr import ALGORITHMS, PPRParams, ppr_exact

SSPPR = ["FORA", "FORA+", "SpeedPPR", "SpeedPPR+", "Agenda", "ResAcc"]


@pytest.fixture(scope="module")
def setting():
    graph = barabasi_albert_graph(80, attach=3, seed=40)
    # generous delta/p_f so the guarantee is meaningful yet the test
    # stays fast: with eps=0.5 and delta=0.01, K ~ O(1e3)
    params = PPRParams(
        alpha=0.2, epsilon=0.5, delta=0.01, p_f=0.1, walk_cap=100_000
    )
    exact = ppr_exact(graph, 0, alpha=params.alpha)
    return graph, params, exact


@pytest.mark.parametrize("name", SSPPR)
def test_relative_error_guarantee(name, setting):
    graph, params, exact = setting
    runs = 12
    delta = params.resolved_delta(80)
    failures = 0
    for seed in range(runs):
        alg = ALGORITHMS[name](graph.copy(), params)
        alg.seed(seed)
        estimate = alg.query(0)
        run_failed = any(
            abs(estimate[v] - exact[v]) > params.epsilon * exact[v]
            for v in range(80)
            if exact[v] > delta
        )
        failures += run_failed
    # empirical failure rate must not exceed p_f with slack for the
    # finite sample (p_f = 0.1, 12 runs -> tolerate <= 3 failures)
    assert failures <= 3, f"{name}: {failures}/{runs} runs broke Eq. 1"


def test_walk_count_drives_accuracy(setting):
    """Raising K (via walk_cap on a tight budget) tightens estimates."""
    graph, _, exact = setting
    errors = {}
    for cap in (50, 50_000):
        params = PPRParams(
            alpha=0.2, epsilon=0.5, delta=0.01, p_f=0.1, walk_cap=cap
        )
        per_seed = []
        for seed in range(5):
            alg = ALGORITHMS["FORA"](graph.copy(), params)
            alg.seed(seed)
            estimate = alg.query(0)
            per_seed.append(
                max(abs(estimate[v] - exact[v]) for v in range(80))
            )
        errors[cap] = float(np.mean(per_seed))
    assert errors[50_000] < errors[50]


def test_hyperparameter_tuning_preserves_guarantee(setting):
    """Quota's knob (r_max) shifts work, never the guarantee."""
    graph, params, exact = setting
    delta = params.resolved_delta(80)
    for r_scale in (0.1, 1.0, 10.0):
        failures = 0
        runs = 8
        for seed in range(runs):
            alg = ALGORITHMS["FORA"](graph.copy(), params)
            alg.set_hyperparameters(
                r_max=min(max(alg.r_max * r_scale, 1e-9), 0.99)
            )
            alg.seed(seed)
            estimate = alg.query(0)
            failures += any(
                abs(estimate[v] - exact[v]) > params.epsilon * exact[v]
                for v in range(80)
                if exact[v] > delta
            )
        assert failures <= 2, f"r_max x{r_scale}: {failures}/{runs} failed"
