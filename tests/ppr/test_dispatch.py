"""Property tests for the multi-backend kernel dispatcher.

The contract (see ``repro.ppr.dispatch``): routing must never change
answers.  Whatever the dispatcher decides — whole batch, locality-split
sub-batches, sequential frontier fallback — executing the decision must
reproduce the scalar oracle (:func:`reference_frontier_push` for the
sync-push family, a pure-Python jj-order sweep loop for the scipy SpMM
family) **bit-for-bit**, on packed and slack-patched CSR views, and on
the forced-fallback path (scipy treated as absent).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph, barabasi_albert_graph
from repro.obs import MetricsRegistry
from repro.ppr import PPRParams, SpeedPPR, csr_view
from repro.ppr.dispatch import (
    AUTO,
    ENGINE_CHOICES,
    ENV_BACKEND,
    ENV_DISABLE,
    ENV_RESIDENT_KB,
    POWER,
    PUSH,
    REGISTRY,
    DispatchCostModel,
    KernelDispatcher,
    frontier_density,
    get_dispatcher,
    plan_chunks,
    resolve_engine_choice,
    set_dispatcher,
)
from repro.ppr.kernels import (
    ENGINES,
    batched_frontier_push,
    frontier_push,
    reference_frontier_push,
)
from repro.ppr.power_iteration import transition_matrix

ALPHA = 0.2

edges_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    min_size=0,
    max_size=35,
)


def build_graph(edges, n=10):
    g = DynamicGraph(num_nodes=n)
    for u, v in edges:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def slack_view(edges, extra_edges, n=10):
    """CSR view with slack rows (materialize packed, then patch)."""
    g = build_graph(edges, n=n)
    csr_view(g)
    for u, v in extra_edges:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return csr_view(g)


def execute_push_decision(view, decision, source_indices, alpha, r_max):
    """Run a push-family routing decision exactly as the algorithms do.

    Returns ``(B, n)`` reserve/residue matrices in input order.
    """
    b = len(source_indices)
    reserve = np.zeros((b, view.n), dtype=np.float64)
    residue = np.zeros((b, view.n), dtype=np.float64)
    if decision.backend == "frontier":
        for i, s in enumerate(source_indices):
            single = frontier_push(view, int(s), alpha, r_max)
            reserve[i] = single.reserve
            residue[i] = single.residue
        return reserve, residue
    assert decision.backend == "batched"
    chunks = decision.chunks
    if chunks is None:
        chunks = (np.arange(b, dtype=np.int64),)
    seen = np.concatenate(chunks)
    # a split must be a permutation of the batch positions
    assert sorted(seen.tolist()) == list(range(b))
    arr = np.asarray(source_indices, dtype=np.int64)
    for chunk in chunks:
        part = batched_frontier_push(view, arr[chunk], alpha, r_max)
        reserve[chunk] = part.reserve
        residue[chunk] = part.residue
    return reserve, residue


@pytest.fixture(autouse=True)
def _fresh_default_dispatcher():
    """Keep the process-wide dispatcher out of cross-test state."""
    set_dispatcher(None)
    yield
    set_dispatcher(None)


# ----------------------------------------------------------------------
# registry and capability declarations
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_backends_declared(self):
        assert set(REGISTRY) == {
            "scalar", "frontier", "batched", "power", "spmm"
        }
        for name in ENGINES:
            assert name in REGISTRY  # every engine is a backend

    def test_engine_choices_are_auto_plus_engines(self):
        assert ENGINE_CHOICES == (AUTO,) + ENGINES
        for choice in ENGINE_CHOICES:
            assert resolve_engine_choice(choice) == choice
        with pytest.raises(ValueError, match="unknown kernel engine"):
            resolve_engine_choice("gpu")

    def test_families(self):
        assert REGISTRY["frontier"].family == PUSH
        assert REGISTRY["batched"].family == PUSH
        assert REGISTRY["power"].family == POWER
        assert REGISTRY["spmm"].family == POWER

    def test_spmm_probe_matches_scipy(self):
        try:
            import scipy  # noqa: F401
            have = True
        except ImportError:  # pragma: no cover
            have = False
        assert REGISTRY["spmm"].probe() is have

    def test_describe_lists_every_backend(self):
        rows = KernelDispatcher(metrics=MetricsRegistry()).describe()
        assert {r[0] for r in rows} == set(REGISTRY)


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
class TestDispatchCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DispatchCostModel(sigma=1.5)
        with pytest.raises(ValueError):
            DispatchCostModel(resident_bytes=0)
        with pytest.raises(ValueError):
            DispatchCostModel(min_batch=1)
        with pytest.raises(ValueError):
            DispatchCostModel(min_resident_rows=0)

    def test_single_source_never_batched(self):
        assert DispatchCostModel().effective_batch(1000, 1) == 1

    def test_resident_cap_shrinks_with_n(self):
        model = DispatchCostModel(resident_bytes=1 << 20)
        assert model.resident_cap(500) > model.resident_cap(20_000)
        # the documented losing cell: 2 * 20k * 8 float64 cells per
        # batch row exceed a 1 MiB budget at B >= 4
        assert model.resident_cap(20_000) < 8

    def test_large_n_disables_batching(self):
        model = DispatchCostModel(resident_bytes=1 << 20)
        assert model.effective_batch(200_000, 16, r_max=1e-5) == 1

    def test_spill_regime_disables_batching_entirely(self):
        """The measured PR-5 losing cell: at n = 20k sequential wins at
        *every* batch size (even B = 2), so once fewer than
        ``min_resident_rows`` rows fit the budget the model goes fully
        sequential rather than splitting into still-losing chunks."""
        model = DispatchCostModel(resident_bytes=1 << 20)
        assert model.resident_cap(20_000) < model.min_resident_rows
        assert model.effective_batch(20_000, 2, r_max=1e-5) == 1
        assert model.effective_batch(20_000, 16, r_max=1e-5) == 1

    def test_oversize_batch_splits_on_mid_graphs(self):
        """Above the floor the cap still splits oversize batches."""
        model = DispatchCostModel(resident_bytes=1 << 20)
        cap = model.resident_cap(5_000)
        assert cap >= model.min_resident_rows
        assert model.effective_batch(5_000, 64, r_max=1e-5) == cap

    def test_small_n_keeps_full_batch(self):
        model = DispatchCostModel(resident_bytes=1 << 20)
        assert model.effective_batch(500, 16, r_max=1e-5) == 16

    def test_sparse_frontier_disables_batching(self):
        # huge r_max => a handful of pushes => nothing to amortize
        model = DispatchCostModel()
        assert model.effective_batch(500, 16, r_max=0.9) == 1

    def test_batch_speedup_curve(self):
        model = DispatchCostModel(sigma=0.5)
        assert model.batch_speedup(1) == pytest.approx(1.0)
        assert model.batch_speedup(8) > model.batch_speedup(2) > 1.0

    def test_from_batch_model_reads_shared_fraction(self):
        class FakeBatchModel:
            shared_fraction = 0.75

        model = DispatchCostModel.from_batch_model(FakeBatchModel())
        assert model.sigma == 0.75

    def test_env_override_resident_kb(self):
        model = DispatchCostModel().with_env({ENV_RESIDENT_KB: "4"})
        assert model.resident_bytes == 4096
        # invalid and non-positive values are ignored
        assert DispatchCostModel().with_env(
            {ENV_RESIDENT_KB: "zero"}
        ).resident_bytes == DispatchCostModel().resident_bytes
        assert DispatchCostModel().with_env(
            {ENV_RESIDENT_KB: "-3"}
        ).resident_bytes == DispatchCostModel().resident_bytes

    def test_frontier_density_bounds(self):
        assert frontier_density(0, 1e-3, ALPHA) == 0.0
        assert 0.0 < frontier_density(10**6, 1e-3, ALPHA) <= 1.0
        assert frontier_density(10, 1e-6, ALPHA) == 1.0


# ----------------------------------------------------------------------
# chunk planning
# ----------------------------------------------------------------------
class TestPlanChunks:
    @settings(max_examples=50, deadline=None)
    @given(
        sources=st.lists(st.integers(0, 999), min_size=1, max_size=40),
        b_eff=st.integers(1, 10),
    )
    def test_partition_is_exact_and_bounded(self, sources, b_eff):
        arr = np.asarray(sources, dtype=np.int64)
        chunks = plan_chunks(arr, b_eff)
        seen = np.concatenate(chunks)
        assert sorted(seen.tolist()) == list(range(len(sources)))
        assert all(c.size <= max(b_eff, len(sources)) for c in chunks)
        if b_eff < len(sources):
            assert all(c.size <= b_eff for c in chunks)

    def test_locality_sort(self):
        chunks = plan_chunks(np.asarray([9, 1, 8, 2, 7, 3]), 2)
        # positions ordered by node index: 1,2,3,7,8,9
        flat = np.concatenate(chunks)
        nodes = np.asarray([9, 1, 8, 2, 7, 3])[flat]
        assert nodes.tolist() == sorted(nodes.tolist())


# ----------------------------------------------------------------------
# routing: overrides, fallback, metrics
# ----------------------------------------------------------------------
class TestRouting:
    def make(self, env=None, **cost_kwargs):
        metrics = MetricsRegistry()
        dispatcher = KernelDispatcher(
            cost_model=DispatchCostModel(**cost_kwargs),
            env=env if env is not None else {},
            metrics=metrics,
        )
        return dispatcher, metrics

    def test_single_source_routes_to_frontier(self):
        dispatcher, metrics = self.make()
        view = csr_view(build_graph([(0, 1), (1, 2)]))
        decision = dispatcher.route_push(view, 1, 1e-4)
        assert decision.backend == "frontier"
        assert decision.effective_batch == 1
        assert metrics.counters()["dispatch.decisions"] == 1

    def test_env_override_forces_backend(self):
        dispatcher, metrics = self.make(env={ENV_BACKEND: "scalar"})
        view = csr_view(build_graph([(0, 1)]))
        decision = dispatcher.route_push(view, 4, 1e-4)
        assert decision.backend == "scalar"
        assert decision.overridden
        assert metrics.counters()["dispatch.overrides"] == 1

    def test_env_override_wrong_family_ignored(self):
        dispatcher, _ = self.make(env={ENV_BACKEND: "spmm"})
        view = csr_view(build_graph([(0, 1)]))
        assert dispatcher.route_push(view, 1, 1e-4).backend == "frontier"

    def test_env_override_unknown_ignored(self):
        dispatcher, _ = self.make(env={ENV_BACKEND: "gpu"})
        view = csr_view(build_graph([(0, 1)]))
        decision = dispatcher.route_push(view, 1, 1e-4)
        assert not decision.overridden

    def test_env_disable_forces_power_fallback(self):
        dispatcher, metrics = self.make(env={ENV_DISABLE: "spmm"})
        view = csr_view(build_graph([(0, 1)]))
        decision = dispatcher.route_power(view, 8)
        assert decision.backend == "power"
        assert decision.fallback
        assert metrics.counters()["dispatch.fallbacks"] == 1

    def test_unavailable_override_falls_back_to_auto(self):
        dispatcher, metrics = self.make(
            env={ENV_BACKEND: "spmm", ENV_DISABLE: "spmm"}
        )
        view = csr_view(build_graph([(0, 1)]))
        decision = dispatcher.route_power(view, 2)
        assert decision.backend == "power"
        assert metrics.counters()["dispatch.fallbacks"] >= 1

    def test_probe_failure_is_cached_and_clearable(self):
        calls = []
        from repro.ppr.dispatch import BackendSpec, register_backend

        def flaky_probe():
            calls.append(1)
            raise RuntimeError("probe exploded")

        register_backend(
            BackendSpec(
                name="_test_flaky",
                family=POWER,
                result_class="power-raw",
                batched=False,
                probe=flaky_probe,
                description="test-only",
            )
        )
        try:
            dispatcher, _ = self.make()
            assert not dispatcher.available("_test_flaky")
            assert not dispatcher.available("_test_flaky")
            assert len(calls) == 1  # cached
            dispatcher.clear_probe_cache()
            assert not dispatcher.available("_test_flaky")
            assert len(calls) == 2
        finally:
            del REGISTRY["_test_flaky"]

    def test_split_counted(self):
        # budget fits 2 rows of a 10-node graph's (n, B) state; the
        # profitability floor is lowered so the split path is taken
        # (at the default floor this budget routes fully sequential)
        dispatcher, metrics = self.make(
            resident_bytes=2 * 8 * 10 * 2, min_resident_rows=2
        )
        view = csr_view(build_graph([(0, 1), (1, 2), (2, 3)]))
        decision = dispatcher.route_push(
            view, 6, 1e-4, source_indices=np.arange(6, dtype=np.int64)
        )
        assert decision.backend == "batched"
        assert decision.effective_batch == 2
        assert decision.chunks is not None and len(decision.chunks) == 3
        assert metrics.counters()["dispatch.splits"] == 1

    def test_spill_regime_routes_sequential(self):
        """Below the profitability floor the router goes sequential
        instead of emitting still-losing chunks."""
        dispatcher, _ = self.make(resident_bytes=2 * 8 * 10 * 2)
        view = csr_view(build_graph([(0, 1), (1, 2), (2, 3)]))
        decision = dispatcher.route_push(
            view, 6, 1e-4, source_indices=np.arange(6, dtype=np.int64)
        )
        assert decision.backend == "frontier"
        assert decision.effective_batch == 1
        assert decision.chunks is None

    def test_get_set_dispatcher_roundtrip(self):
        custom = KernelDispatcher(metrics=MetricsRegistry())
        set_dispatcher(custom)
        assert get_dispatcher() is custom
        set_dispatcher(None)
        assert get_dispatcher() is not custom


# ----------------------------------------------------------------------
# routing invariance: any decision == the scalar push oracle, bitwise
# ----------------------------------------------------------------------
class TestPushRoutingInvariance:
    @settings(max_examples=40, deadline=None)
    @given(
        edges=edges_strategy,
        sources=st.lists(st.integers(0, 9), min_size=1, max_size=8),
        r_max_exp=st.integers(-5, -1),
        resident_rows=st.integers(1, 12),
    )
    def test_any_decision_matches_oracle_packed(
        self, edges, sources, r_max_exp, resident_rows
    ):
        view = csr_view(build_graph(edges))
        r_max = 10.0**r_max_exp
        # resident budget in units of batch rows => decisions range
        # over sequential / split / whole-batch as hypothesis varies it
        dispatcher = KernelDispatcher(
            cost_model=DispatchCostModel(
                resident_bytes=2 * 8 * max(view.n, 1) * resident_rows,
                min_push_work=0.0,
                # floor lowered so hypothesis reaches every decision
                # shape (sequential / split / whole) on tiny graphs
                min_resident_rows=1,
            ),
            env={},
            metrics=MetricsRegistry(),
        )
        decision = dispatcher.route_push(
            view,
            len(sources),
            r_max,
            alpha=ALPHA,
            source_indices=np.asarray(sources, dtype=np.int64),
        )
        reserve, residue = execute_push_decision(
            view, decision, sources, ALPHA, r_max
        )
        for i, s in enumerate(sources):
            oracle = reference_frontier_push(view, s, ALPHA, r_max)
            np.testing.assert_array_equal(reserve[i], oracle.reserve)
            np.testing.assert_array_equal(residue[i], oracle.residue)

    @settings(max_examples=30, deadline=None)
    @given(
        edges=edges_strategy,
        extra=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            min_size=1,
            max_size=15,
        ),
        sources=st.lists(st.integers(0, 9), min_size=2, max_size=6),
        r_max_exp=st.integers(-5, -1),
        resident_rows=st.integers(1, 8),
    )
    def test_any_decision_matches_oracle_slack(
        self, edges, extra, sources, r_max_exp, resident_rows
    ):
        view = slack_view(edges, extra)
        r_max = 10.0**r_max_exp
        dispatcher = KernelDispatcher(
            cost_model=DispatchCostModel(
                resident_bytes=2 * 8 * max(view.n, 1) * resident_rows,
                min_push_work=0.0,
                # floor lowered so hypothesis reaches every decision
                # shape (sequential / split / whole) on tiny graphs
                min_resident_rows=1,
            ),
            env={},
            metrics=MetricsRegistry(),
        )
        decision = dispatcher.route_push(
            view,
            len(sources),
            r_max,
            alpha=ALPHA,
            source_indices=np.asarray(sources, dtype=np.int64),
        )
        reserve, residue = execute_push_decision(
            view, decision, sources, ALPHA, r_max
        )
        for i, s in enumerate(sources):
            oracle = reference_frontier_push(view, s, ALPHA, r_max)
            np.testing.assert_array_equal(reserve[i], oracle.reserve)
            np.testing.assert_array_equal(residue[i], oracle.residue)


# ----------------------------------------------------------------------
# scipy SpMM family: chunked == whole == pure-Python jj-order oracle
# ----------------------------------------------------------------------
def reference_spmm_sweeps(matrix_t, source_indices, n, alpha, stop_mass):
    """Pure-Python power sweeps in scipy's per-element jj order.

    scipy's CSR matvec/SpMM kernels accumulate each output element
    sequentially over the row's jj index range, so this loop performs
    the exact IEEE-754 operations of the C kernels — the scalar oracle
    of the spmm backend.
    """
    indptr, indices, data = (
        matrix_t.indptr, matrix_t.indices, matrix_t.data
    )

    def matvec(x):
        out = np.zeros(n, dtype=np.float64)
        for i in range(n):
            acc = 0.0
            for jj in range(indptr[i], indptr[i + 1]):
                acc += data[jj] * x[indices[jj]]
            out[i] = acc
        return out

    results = []
    for s in source_indices:
        residue = np.zeros(n, dtype=np.float64)
        residue[s] = 1.0
        reserve = np.zeros(n, dtype=np.float64)
        sweeps = 0
        while residue.sum() > stop_mass and sweeps < 200:
            reserve = reserve + alpha * residue
            residue = (1.0 - alpha) * matvec(residue)
            sweeps += 1
        results.append((reserve, residue))
    return results


class TestSpmmRoutingInvariance:
    @settings(max_examples=15, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=1,
            max_size=25,
        ),
        sources=st.lists(st.integers(0, 7), min_size=2, max_size=6),
        resident_rows=st.integers(1, 8),
    )
    def test_chunked_spmm_matches_jj_order_oracle(
        self, edges, sources, resident_rows
    ):
        pytest.importorskip("scipy")
        view = csr_view(build_graph(edges, n=8))
        matrix_t = transition_matrix(view).T.tocsr()
        stop_mass = 1e-4
        dispatcher = KernelDispatcher(
            cost_model=DispatchCostModel(
                resident_bytes=2 * 8 * view.n * resident_rows,
                min_push_work=0.0,
            ),
            env={},
            metrics=MetricsRegistry(),
        )
        decision = dispatcher.route_power(view, len(sources))
        assert decision.backend == "spmm"
        arr = np.asarray(sources, dtype=np.int64)
        chunks = decision.chunks or (
            np.arange(len(sources), dtype=np.int64),
        )
        got = [None] * len(sources)
        for chunk in chunks:
            cols = arr[chunk]
            residues = np.zeros((view.n, cols.size), dtype=np.float64)
            residues[cols, np.arange(cols.size)] = 1.0
            reserves = np.zeros((view.n, cols.size), dtype=np.float64)
            sweeps = 0
            while residues[:, 0].sum() > stop_mass and sweeps < 200:
                reserves += ALPHA * residues
                residues = (1.0 - ALPHA) * (matrix_t @ residues)
                sweeps += 1
            for j, pos in enumerate(chunk):
                got[pos] = (reserves[:, j].copy(), residues[:, j].copy())
        want = reference_spmm_sweeps(
            matrix_t, sources, view.n, ALPHA, stop_mass
        )
        for (g_res, g_rem), (w_res, w_rem) in zip(got, want):
            np.testing.assert_array_equal(g_res, w_res)
            np.testing.assert_array_equal(g_rem, w_rem)


# ----------------------------------------------------------------------
# forced fallback through a full algorithm (scipy treated as absent)
# ----------------------------------------------------------------------
class TestForcedFallback:
    def test_speedppr_auto_falls_back_without_scipy(self, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE, "spmm")
        set_dispatcher(None)  # rebuild with the env in effect
        g = barabasi_albert_graph(60, attach=2, seed=8)
        algo = SpeedPPR(g, PPRParams(walk_cap=500), engine="auto")
        algo.seed(3)
        batch = algo.query_batch([0, 1, 2, 3])
        assert algo.last_query_stats.extra.get("backend") == "power"
        # the fallback loops single queries: each must equal a fresh
        # identically-seeded single query bit-for-bit
        solo = SpeedPPR(g, PPRParams(walk_cap=500), engine="auto")
        solo.seed(3)
        for source, result in zip([0, 1, 2, 3], batch):
            np.testing.assert_array_equal(
                result.values, solo.query(source).values
            )

    def test_speedppr_single_query_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE, "spmm")
        set_dispatcher(None)
        g = barabasi_albert_graph(40, attach=2, seed=9)
        algo = SpeedPPR(g, PPRParams(walk_cap=200), engine="auto")
        algo.query(1)
        assert algo.last_query_stats.extra["backend"] == "power"

    def test_scalar_only_algorithms_degrade_auto_to_scalar(self):
        from repro.ppr import ResAcc

        g = barabasi_albert_graph(30, attach=2, seed=1)
        algo = ResAcc(g, PPRParams(walk_cap=100))
        algo.set_engine("auto")
        assert algo.engine == "scalar"


# ----------------------------------------------------------------------
# chunked auto batches through a full algorithm
# ----------------------------------------------------------------------
class TestForaChunkedAuto:
    def test_chunked_auto_batch_is_bit_for_bit(self):
        """A locality-split auto batch equals the legacy whole-batch
        engine exactly: the push scatter is result-invariant and the
        walk phase stays one whole-batch call (identical RNG draws)."""
        from repro.ppr import Fora

        g = barabasi_albert_graph(300, attach=2, seed=5)
        static = Fora(g, PPRParams(walk_cap=200), engine="batched")
        static.seed(7)
        want = static.query_batch(list(range(12)))
        # a budget of 4 rows with a lowered profitability floor forces
        # a 3-way split of the 12-source batch
        set_dispatcher(
            KernelDispatcher(
                cost_model=DispatchCostModel(
                    resident_bytes=2 * 8 * 300 * 4,
                    min_push_work=0.0,
                    min_resident_rows=2,
                ),
                env={},
                metrics=MetricsRegistry(),
            )
        )
        auto = Fora(g, PPRParams(walk_cap=200), engine="auto")
        auto.seed(7)
        got = auto.query_batch(list(range(12)))
        extra = auto.last_query_stats.extra
        assert extra["backend"] == "batched"
        assert extra["effective_batch"] == 4
        for a, b in zip(want, got):
            np.testing.assert_array_equal(a.values, b.values)

    def test_spill_regime_auto_batch_goes_sequential(self):
        """Below the profitability floor, an auto batch serves each
        source with the sequential frontier path (no batched kernel)."""
        from repro.ppr import Fora

        g = barabasi_albert_graph(300, attach=2, seed=5)
        set_dispatcher(
            KernelDispatcher(
                cost_model=DispatchCostModel(
                    resident_bytes=2 * 8 * 300 * 4, min_push_work=0.0
                ),
                env={},
                metrics=MetricsRegistry(),
            )
        )
        auto = Fora(g, PPRParams(walk_cap=200), engine="auto")
        auto.seed(7)
        results = auto.query_batch(list(range(12)))
        assert len(results) == 12
        # the batched-kernel extras are absent on the sequential path
        assert "effective_batch" not in auto.last_query_stats.extra
