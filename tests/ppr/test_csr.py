"""Tests for the incrementally maintained CSR view."""

import random

import numpy as np
import pytest

from repro.graph import DynamicGraph, barabasi_albert_graph
from repro.graph.updates import random_update_stream
from repro.ppr import csr_view
from repro.ppr.csr import CSRView
from repro.obs import get_metrics


def assert_views_equivalent(patched: CSRView, fresh: CSRView) -> None:
    """Element-for-element equivalence up to within-row neighbor order
    (neighbor order is irrelevant to every consumer)."""
    assert patched.n == fresh.n
    assert patched.m == fresh.m
    assert np.array_equal(patched.nodes, fresh.nodes)
    assert np.array_equal(patched.out_deg, fresh.out_deg)
    assert np.array_equal(patched.in_deg, fresh.in_deg)
    for i in range(fresh.n):
        assert sorted(patched.out_neighbors_of(i).tolist()) == sorted(
            fresh.out_neighbors_of(i).tolist()
        ), f"out-row {i} diverged"
        assert sorted(patched.in_neighbors_of(i).tolist()) == sorted(
            fresh.in_neighbors_of(i).tolist()
        ), f"in-row {i} diverged"


class TestCSRStructure:
    def test_adjacency_matches_graph(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 0)])
        view = csr_view(g)
        assert view.n == 3
        assert view.m == 4
        assert sorted(view.out_neighbors_of(view.to_index(0)).tolist()) == [
            view.to_index(1),
            view.to_index(2),
        ]
        assert sorted(view.in_neighbors_of(view.to_index(2)).tolist()) == [
            view.to_index(0),
            view.to_index(1),
        ]

    def test_degrees(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (3, 0)])
        view = csr_view(g)
        assert view.out_deg[view.to_index(0)] == 2
        assert view.in_deg[view.to_index(0)] == 1

    def test_identity_fast_path(self):
        g = DynamicGraph(num_nodes=5)
        g.add_edge(0, 1)
        view = csr_view(g)
        assert view.identity_ids
        assert view.to_index(3) == 3

    def test_identity_fast_path_bad_node_raises(self):
        g = DynamicGraph(num_nodes=3)
        view = csr_view(g)
        with pytest.raises(KeyError):
            view.to_index(99)

    def test_non_contiguous_ids(self):
        g = DynamicGraph.from_edges([(10, 20), (20, 30)])
        view = csr_view(g)
        assert not view.identity_ids
        i = view.to_index(20)
        assert view.to_node(i) == 20
        assert view.out_deg[i] == 1

    def test_empty_graph(self):
        view = csr_view(DynamicGraph())
        assert view.n == 0
        assert view.indices.size == 0


class TestCaching:
    def test_same_view_until_mutation(self):
        g = DynamicGraph.from_edges([(0, 1)])
        a = csr_view(g)
        b = csr_view(g)
        assert a is b

    def test_rebuild_after_edge_insert(self):
        g = DynamicGraph.from_edges([(0, 1)])
        a = csr_view(g)
        g.add_edge(1, 0)
        b = csr_view(g)
        assert a is not b
        assert b.m == 2

    def test_rebuild_after_edge_delete(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 0)])
        a = csr_view(g)
        g.remove_edge(0, 1)
        b = csr_view(g)
        assert a is not b
        assert b.m == 1

    def test_independent_graphs_independent_views(self):
        g1 = DynamicGraph.from_edges([(0, 1)])
        g2 = DynamicGraph.from_edges([(0, 1)])
        assert csr_view(g1) is not csr_view(g2)


class TestIncrementalMaintenance:
    def test_insert_patches_in_place(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        csr_view(g)
        applies_before = get_metrics().counter("csr_delta_applies").value
        g.add_edge(2, 0)
        view = csr_view(g)
        assert get_metrics().counter("csr_delta_applies").value > applies_before
        assert_views_equivalent(view, CSRView(g))

    def test_delete_patches_in_place(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        csr_view(g)
        g.remove_edge(0, 2)
        assert_views_equivalent(csr_view(g), CSRView(g))

    def test_many_toggles_stay_equivalent(self):
        g = barabasi_albert_graph(60, attach=2, seed=3)
        csr_view(g)
        for update in random_update_stream(g, 300, random.Random(0)):
            update.apply(g)
            assert_views_equivalent(csr_view(g), CSRView(g))

    def test_new_contiguous_node_keeps_identity_path(self):
        g = DynamicGraph(num_nodes=4)
        g.add_edge(0, 1)
        view = csr_view(g)
        assert view.identity_ids
        g.add_edge(2, 4)  # creates node 4 == next dense index
        view = csr_view(g)
        assert view.identity_ids
        assert view.to_index(4) == 4
        assert_views_equivalent(view, CSRView(g))

    def test_new_non_contiguous_node_breaks_identity(self):
        g = DynamicGraph(num_nodes=3)
        g.add_edge(0, 1)
        csr_view(g)
        g.add_edge(1, 99)
        view = csr_view(g)
        assert not view.identity_ids
        assert view.to_node(view.to_index(99)) == 99
        assert_views_equivalent(view, CSRView(g))

    def test_node_removal_falls_back_to_rebuild(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        csr_view(g)
        rebuilds_before = get_metrics().counter("csr_rebuilds").value
        g.remove_node(1)
        view = csr_view(g)
        assert get_metrics().counter("csr_rebuilds").value > rebuilds_before
        assert view.n == 2
        assert_views_equivalent(view, CSRView(g))

    def test_restore_invalidates_cache(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        snap = g.snapshot()
        stale = csr_view(g)
        g.add_edge(2, 0)
        csr_view(g)
        g.restore(snap)
        view = csr_view(g)
        assert view is not stale
        assert view.m == 2
        assert_views_equivalent(view, CSRView(g))

    def test_facade_identity_changes_per_version(self):
        """Downstream caches (walk indexes, transition matrices) use
        view object identity as their staleness probe."""
        g = DynamicGraph.from_edges([(0, 1)])
        a = csr_view(g)
        g.add_edge(1, 0)
        b = csr_view(g)
        g.remove_edge(1, 0)
        c = csr_view(g)
        assert a is not b and b is not c

    def test_cache_hits_counted(self):
        g = DynamicGraph.from_edges([(0, 1)])
        csr_view(g)
        hits_before = get_metrics().counter("csr_cache_hits").value
        assert csr_view(g) is csr_view(g)
        assert get_metrics().counter("csr_cache_hits").value >= hits_before + 2

    def test_compaction_threshold_knob(self, monkeypatch):
        from repro.ppr import csr as csr_module

        monkeypatch.setattr(csr_module, "REBUILD_SLACK_RATIO", 0.0)
        monkeypatch.setattr(csr_module, "SLACK_FLOOR", 0)
        g = barabasi_albert_graph(30, attach=2, seed=1)
        csr_view(g)
        compactions_before = get_metrics().counter("csr_compactions").value
        for update in random_update_stream(g, 50, random.Random(2)):
            update.apply(g)
            csr_view(g)
        assert (
            get_metrics().counter("csr_compactions").value > compactions_before
        )
        assert_views_equivalent(csr_view(g), CSRView(g))


class TestPackedAccessors:
    def test_fresh_view_is_packed(self):
        g = barabasi_albert_graph(40, attach=2, seed=2)
        view = csr_view(g)
        assert view.is_packed
        indptr, indices = view.packed_out()
        assert indptr is view.indptr and indices is view.indices

    def test_patched_view_packs_correctly(self):
        g = barabasi_albert_graph(40, attach=2, seed=2)
        csr_view(g)
        for update in random_update_stream(g, 120, random.Random(4)):
            update.apply(g)
        view = csr_view(g)
        fresh = CSRView(g)
        for patched_pack, fresh_pack in (
            (view.packed_out(), (fresh.indptr, fresh.indices)),
            (view.packed_in(), (fresh.in_indptr, fresh.in_indices)),
        ):
            indptr, indices = patched_pack
            f_indptr, f_indices = fresh_pack
            assert np.array_equal(indptr, f_indptr)
            assert indices.size == view.m
            for i in range(view.n):
                assert sorted(indices[indptr[i]:indptr[i + 1]].tolist()) == (
                    sorted(f_indices[f_indptr[i]:f_indptr[i + 1]].tolist())
                )


def test_large_graph_consistency():
    g = barabasi_albert_graph(200, attach=2, seed=5)
    view = csr_view(g)
    # every edge appears exactly once in the CSR arrays
    pairs = set()
    for i in range(view.n):
        u = view.to_node(i)
        for j in view.out_neighbors_of(i):
            pairs.add((u, view.to_node(int(j))))
    assert pairs == set(g.edges())
    assert int(view.out_deg.sum()) == g.num_edges
    assert int(view.in_deg.sum()) == g.num_edges
