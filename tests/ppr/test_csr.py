"""Tests for the cached CSR snapshot."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, barabasi_albert_graph
from repro.ppr import csr_view
from repro.ppr.csr import CSRView


class TestCSRStructure:
    def test_adjacency_matches_graph(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 0)])
        view = csr_view(g)
        assert view.n == 3
        assert view.m == 4
        assert sorted(view.out_neighbors_of(view.to_index(0)).tolist()) == [
            view.to_index(1),
            view.to_index(2),
        ]
        assert sorted(view.in_neighbors_of(view.to_index(2)).tolist()) == [
            view.to_index(0),
            view.to_index(1),
        ]

    def test_degrees(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (3, 0)])
        view = csr_view(g)
        assert view.out_deg[view.to_index(0)] == 2
        assert view.in_deg[view.to_index(0)] == 1

    def test_identity_fast_path(self):
        g = DynamicGraph(num_nodes=5)
        g.add_edge(0, 1)
        view = csr_view(g)
        assert view.identity_ids
        assert view.to_index(3) == 3

    def test_identity_fast_path_bad_node_raises(self):
        g = DynamicGraph(num_nodes=3)
        view = csr_view(g)
        with pytest.raises(KeyError):
            view.to_index(99)

    def test_non_contiguous_ids(self):
        g = DynamicGraph.from_edges([(10, 20), (20, 30)])
        view = csr_view(g)
        assert not view.identity_ids
        i = view.to_index(20)
        assert view.to_node(i) == 20
        assert view.out_deg[i] == 1

    def test_empty_graph(self):
        view = csr_view(DynamicGraph())
        assert view.n == 0
        assert view.indices.size == 0


class TestCaching:
    def test_same_view_until_mutation(self):
        g = DynamicGraph.from_edges([(0, 1)])
        a = csr_view(g)
        b = csr_view(g)
        assert a is b

    def test_rebuild_after_edge_insert(self):
        g = DynamicGraph.from_edges([(0, 1)])
        a = csr_view(g)
        g.add_edge(1, 0)
        b = csr_view(g)
        assert a is not b
        assert b.m == 2

    def test_rebuild_after_edge_delete(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 0)])
        a = csr_view(g)
        g.remove_edge(0, 1)
        b = csr_view(g)
        assert a is not b
        assert b.m == 1

    def test_independent_graphs_independent_views(self):
        g1 = DynamicGraph.from_edges([(0, 1)])
        g2 = DynamicGraph.from_edges([(0, 1)])
        assert csr_view(g1) is not csr_view(g2)


def test_large_graph_consistency():
    g = barabasi_albert_graph(200, attach=2, seed=5)
    view = csr_view(g)
    # every edge appears exactly once in the CSR arrays
    pairs = set()
    for i in range(view.n):
        u = view.to_node(i)
        for j in view.out_neighbors_of(i):
            pairs.add((u, view.to_node(int(j))))
    assert pairs == set(g.edges())
    assert int(view.out_deg.sum()) == g.num_edges
    assert int(view.in_deg.sum()) == g.num_edges
