"""Property tests for the vectorized frontier/batched push kernels.

The contract under test (see ``repro.ppr.kernels``): the vectorized
kernels perform the exact IEEE-754 operations of the pure-Python
synchronous reference, in the exact same order, so reserve *and*
residue must match :func:`reference_frontier_push` **bit-for-bit** —
on packed views, on slack-slot patched views, and with dangling nodes.
Row ``b`` of a batched push must likewise be bit-for-bit the
single-source frontier push of ``sources[b]``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicGraph, barabasi_albert_graph, ring_graph
from repro.ppr import csr_view, forward_push, ppr_exact_all_pairs
from repro.ppr.kernels import (
    ENGINES,
    batched_frontier_push,
    frontier_push,
    power_phase,
    reference_frontier_push,
    resolve_engine,
)

ALPHA = 0.2

edges_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    min_size=0,
    max_size=35,
)


def build_graph(edges, n=10):
    """Graph with ``n`` nodes; self-loops dropped, duplicates ignored.

    Nodes not reached by any edge stay isolated and nodes with only
    in-edges are dangling — both paths the kernels must handle.
    """
    g = DynamicGraph(num_nodes=n)
    for u, v in edges:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def slack_view(edges, extra_edges, n=10):
    """A CSR view whose rows carry slack slots.

    Materialize the packed store first, then add edges so the second
    ``csr_view`` call patches rows in place (slack-slot layout, where
    ``indptr[t + 1]`` is no longer the end of row ``t``).  Only the
    *fresh* view is valid — reads through the first facade are
    undefined after the patch (see ``repro.ppr.csr``).
    """
    g = build_graph(edges, n=n)
    csr_view(g)  # materialize the packed store
    for u, v in extra_edges:
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return csr_view(g)


def assert_bit_for_bit(result, oracle):
    np.testing.assert_array_equal(result.reserve, oracle.reserve)
    np.testing.assert_array_equal(result.residue, oracle.residue)
    assert result.pushes == oracle.pushes


# ----------------------------------------------------------------------
# engine registry
# ----------------------------------------------------------------------
class TestEngineRegistry:
    def test_known_engines(self):
        assert ENGINES == ("scalar", "frontier", "batched")
        for engine in ENGINES:
            assert resolve_engine(engine) == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel engine"):
            resolve_engine("gpu")


# ----------------------------------------------------------------------
# frontier kernel vs the pure-Python synchronous oracle
# ----------------------------------------------------------------------
class TestFrontierBitForBit:
    @settings(max_examples=60, deadline=None)
    @given(
        edges=edges_strategy,
        source=st.integers(0, 9),
        r_max_exp=st.integers(-6, -1),
    )
    def test_matches_reference_on_packed_views(
        self, edges, source, r_max_exp
    ):
        view = csr_view(build_graph(edges))
        r_max = 10.0**r_max_exp
        got = frontier_push(view, source, ALPHA, r_max)
        want = reference_frontier_push(view, source, ALPHA, r_max)
        assert_bit_for_bit(got, want)

    @settings(max_examples=60, deadline=None)
    @given(
        edges=edges_strategy,
        extra=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            min_size=1,
            max_size=15,
        ),
        source=st.integers(0, 9),
        r_max_exp=st.integers(-6, -1),
    )
    def test_matches_reference_on_slack_views(
        self, edges, extra, source, r_max_exp
    ):
        view = slack_view(edges, extra)
        r_max = 10.0**r_max_exp
        got = frontier_push(view, source, ALPHA, r_max)
        want = reference_frontier_push(view, source, ALPHA, r_max)
        assert_bit_for_bit(got, want)

    def test_warm_start_matches_reference(self):
        g = barabasi_albert_graph(80, attach=2, seed=9)
        view = csr_view(g)
        coarse = frontier_push(view, 0, ALPHA, 1e-2)
        oracle = reference_frontier_push(
            view, 0, ALPHA, 1e-6,
            residue=coarse.residue.copy(),
            reserve=coarse.reserve.copy(),
        )
        resumed = frontier_push(
            view, 0, ALPHA, 1e-6,
            residue=coarse.residue, reserve=coarse.reserve,
        )
        assert_bit_for_bit(resumed, oracle)

    def test_dangling_only_target(self):
        g = DynamicGraph.from_edges([(0, 1)])  # node 1 dangling
        view = csr_view(g)
        got = frontier_push(view, view.to_index(0), ALPHA, 1e-10)
        want = reference_frontier_push(view, view.to_index(0), ALPHA, 1e-10)
        assert_bit_for_bit(got, want)
        assert got.reserve[view.to_index(1)] == pytest.approx(
            1 - ALPHA, abs=1e-8
        )

    def test_empty_graph(self):
        view = csr_view(DynamicGraph())
        result = frontier_push(view, 0, ALPHA, 0.1)
        assert result.pushes == 0
        assert result.reserve.size == 0

    @settings(max_examples=25, deadline=None)
    @given(edges=edges_strategy, r_max_exp=st.integers(-6, -1))
    def test_invariant_against_exact(self, edges, r_max_exp):
        """The FORA invariant holds for the synchronous schedule too."""
        g = build_graph(edges)
        view = csr_view(g)
        result = frontier_push(view, 0, ALPHA, 10.0**r_max_exp)
        pi_all = ppr_exact_all_pairs(g, alpha=ALPHA)
        reconstructed = result.reserve + result.residue @ pi_all
        np.testing.assert_allclose(reconstructed, pi_all[0], atol=1e-8)


# ----------------------------------------------------------------------
# batched kernel: per-row equality + mass conservation
# ----------------------------------------------------------------------
class TestBatchedKernel:
    @settings(max_examples=40, deadline=None)
    @given(
        edges=edges_strategy,
        sources=st.lists(st.integers(0, 9), min_size=1, max_size=6),
        r_max_exp=st.integers(-5, -1),
    )
    def test_rows_match_single_source_push(self, edges, sources, r_max_exp):
        view = csr_view(build_graph(edges))
        r_max = 10.0**r_max_exp
        batch = batched_frontier_push(
            view, np.asarray(sources), ALPHA, r_max
        )
        for b, source in enumerate(sources):
            single = frontier_push(view, source, ALPHA, r_max)
            np.testing.assert_array_equal(batch.reserve[b], single.reserve)
            np.testing.assert_array_equal(batch.residue[b], single.residue)

    @settings(max_examples=30, deadline=None)
    @given(
        edges=edges_strategy,
        extra=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            min_size=1,
            max_size=15,
        ),
        sources=st.lists(st.integers(0, 9), min_size=2, max_size=5),
        r_max_exp=st.integers(-5, -1),
    )
    def test_rows_match_reference_on_slack_views(
        self, edges, extra, sources, r_max_exp
    ):
        view = slack_view(edges, extra)
        r_max = 10.0**r_max_exp
        batch = batched_frontier_push(
            view, np.asarray(sources), ALPHA, r_max
        )
        for b, source in enumerate(sources):
            oracle = reference_frontier_push(view, source, ALPHA, r_max)
            np.testing.assert_array_equal(batch.reserve[b], oracle.reserve)
            np.testing.assert_array_equal(batch.residue[b], oracle.residue)

    @settings(max_examples=30, deadline=None)
    @given(
        edges=edges_strategy,
        sources=st.lists(st.integers(0, 9), min_size=1, max_size=8),
        r_max_exp=st.integers(-6, -1),
    )
    def test_mass_conservation_per_row(self, edges, sources, r_max_exp):
        view = csr_view(build_graph(edges))
        batch = batched_frontier_push(
            view, np.asarray(sources), ALPHA, 10.0**r_max_exp
        )
        totals = batch.reserve.sum(axis=1) + batch.residue.sum(axis=1)
        np.testing.assert_allclose(totals, 1.0, atol=1e-12)
        assert np.all(batch.reserve >= 0)
        assert np.all(batch.residue >= -1e-15)

    def test_duplicate_sources_identical_rows(self):
        view = csr_view(barabasi_albert_graph(50, attach=2, seed=6))
        batch = batched_frontier_push(
            view, np.asarray([3, 3, 3]), ALPHA, 1e-4
        )
        np.testing.assert_array_equal(batch.reserve[0], batch.reserve[1])
        np.testing.assert_array_equal(batch.reserve[0], batch.reserve[2])

    def test_empty_batch(self):
        view = csr_view(ring_graph(5))
        batch = batched_frontier_push(
            view, np.asarray([], dtype=np.int64), ALPHA, 1e-4
        )
        assert batch.reserve.shape == (0, 5)
        assert batch.pushes == 0
        assert batch.sweeps == 0


# ----------------------------------------------------------------------
# SpeedPPR power phase on raw CSR rows
# ----------------------------------------------------------------------
class TestPowerPhase:
    @settings(max_examples=25, deadline=None)
    @given(edges=edges_strategy, source=st.integers(0, 9))
    def test_mass_conserved_each_state(self, edges, source):
        view = csr_view(build_graph(edges))
        residue = np.zeros(view.n)
        residue[source] = 1.0
        reserve = np.zeros(view.n)
        reserve, residue, sweeps = power_phase(
            view, residue, reserve, ALPHA, stop_mass=1e-6
        )
        assert reserve.sum() + residue.sum() == pytest.approx(1.0)
        assert float(residue.sum()) <= 1e-6 or sweeps == 200

    def test_converges_to_exact(self):
        g = ring_graph(7)
        view = csr_view(g)
        residue = np.zeros(view.n)
        residue[0] = 1.0
        reserve, residue, _ = power_phase(
            view, residue, np.zeros(view.n), ALPHA, stop_mass=1e-12
        )
        exact = ppr_exact_all_pairs(g, alpha=ALPHA)[0]
        np.testing.assert_allclose(reserve, exact, atol=1e-9)

    def test_slack_view_matches_packed(self):
        """The power phase reads slack rows exactly like packed rows."""
        edges = [(0, 1), (1, 2), (2, 0), (3, 4)]
        extra = [(0, 5), (4, 6), (2, 7)]
        patched = slack_view(edges, extra)
        packed = csr_view(build_graph(edges + extra))

        def run(view):
            residue = np.zeros(view.n)
            residue[0] = 1.0
            reserve, _, _ = power_phase(
                view, residue, np.zeros(view.n), ALPHA, stop_mass=1e-10
            )
            return reserve

        np.testing.assert_allclose(run(patched), run(packed), atol=1e-12)
