"""Tests for ResAcc, FORA-TopK, and TopPPR."""

import pytest

from repro.graph import EdgeUpdate
from repro.ppr import ForaTopK, ResAcc, TopPPR, ppr_exact


class TestResAcc:
    def test_query_accuracy(self, small_ba_graph, params):
        alg = ResAcc(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        estimate = alg.query(0)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.02

    def test_multiple_rounds_accumulate(self, small_ba_graph, params):
        one_round = ResAcc(small_ba_graph, params, rounds=1)
        one_round.seed(1)
        three_rounds = ResAcc(small_ba_graph.copy(), params, rounds=3)
        three_rounds.seed(1)
        # force the same starting threshold for an apples comparison
        r0 = one_round.r_max
        three_rounds.set_hyperparameters(r_max=r0)
        one_round.query(0)
        three_rounds.query(0)
        assert three_rounds.last_query_stats.pushes >= one_round.last_query_stats.pushes
        assert three_rounds.last_query_stats.walks <= one_round.last_query_stats.walks

    def test_invalid_rounds(self, small_ba_graph, params):
        with pytest.raises(ValueError):
            ResAcc(small_ba_graph, params, rounds=0)

    def test_update_is_graph_only(self, small_ba_graph, params):
        alg = ResAcc(small_ba_graph, params)
        alg.apply_update(EdgeUpdate(0, 20))
        assert alg.timers.count("Graph Update") == 1


class TestForaTopK:
    def test_topk_matches_exact_ranking(self, small_ba_graph, params):
        alg = ForaTopK(small_ba_graph, params, k=5)
        alg.seed(0)
        got = [node for node, _ in alg.query_topk(0)]
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        truth = [node for node, _ in exact.top_k(5)]
        # precision@5 of at least 4/5 (Monte-Carlo ranking noise)
        assert len(set(got) & set(truth)) >= 4

    def test_scores_descending(self, small_ba_graph, params):
        alg = ForaTopK(small_ba_graph, params, k=8)
        alg.seed(1)
        scores = [score for _, score in alg.query_topk(0)]
        assert scores == sorted(scores, reverse=True)

    def test_refinement_tightens_r_max(self, small_ba_graph, params):
        alg = ForaTopK(small_ba_graph, params, k=5, max_rounds=4)
        alg.seed(2)
        alg.query(0)
        assert alg.last_query_stats.extra["final_r_max"] <= alg.r_max

    def test_invalid_k(self, small_ba_graph, params):
        with pytest.raises(ValueError):
            ForaTopK(small_ba_graph, params, k=0)

    def test_update_is_graph_only(self, small_ba_graph, params):
        alg = ForaTopK(small_ba_graph, params)
        alg.apply_update(EdgeUpdate(0, 20))
        assert alg.timers.count("Graph Update") == 1


class TestTopPPR:
    def test_topk_matches_exact_ranking(self, small_ba_graph, params):
        alg = TopPPR(small_ba_graph, params, k=5)
        alg.seed(0)
        got = [node for node, _ in alg.query_topk(0)]
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        truth = [node for node, _ in exact.top_k(5)]
        assert len(set(got) & set(truth)) >= 4

    def test_reverse_push_phase_runs(self, small_ba_graph, params):
        alg = TopPPR(small_ba_graph, params, k=5)
        alg.seed(1)
        alg.query(0)
        assert alg.timers.count("Reverse Push") == 1
        assert alg.last_query_stats.extra["candidates"] == 10  # 2.0 * k

    def test_candidate_factor_bounds(self, small_ba_graph, params):
        with pytest.raises(ValueError):
            TopPPR(small_ba_graph, params, candidate_factor=0.5)
        with pytest.raises(ValueError):
            TopPPR(small_ba_graph, params, k=0)

    def test_two_hyperparameters(self, small_ba_graph, params):
        alg = TopPPR(small_ba_graph, params)
        assert alg.hyperparameter_names == ("r_max", "r_max_b")

    def test_refined_scores_close_to_exact(self, small_ba_graph, params):
        alg = TopPPR(small_ba_graph, params, k=5)
        alg.seed(3)
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        for node, score in alg.query_topk(0):
            assert score == pytest.approx(exact[node], abs=0.02)
