"""Tests for vectorized random walks and the WalkIndex."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, complete_graph, ring_graph
from repro.ppr import csr_view, ppr_exact, sample_walk_terminals
from repro.ppr.random_walk import WalkIndex, walk_steps_estimate

ALPHA = 0.2


class TestSampleWalkTerminals:
    def test_empirical_distribution_matches_ppr(self):
        g = ring_graph(5)
        view = csr_view(g)
        rng = np.random.default_rng(0)
        num = 60_000
        terminals = sample_walk_terminals(
            view, np.zeros(num, dtype=np.int64), ALPHA, rng
        )
        counts = np.bincount(terminals, minlength=5) / num
        exact = ppr_exact(g, 0, alpha=ALPHA)
        for t in range(5):
            assert counts[t] == pytest.approx(exact[t], abs=0.01)

    def test_dangling_walk_terminates_in_place(self):
        g = DynamicGraph.from_edges([(0, 1)])  # 1 is dangling
        view = csr_view(g)
        rng = np.random.default_rng(1)
        terminals = sample_walk_terminals(
            view, np.full(5000, view.to_index(1), dtype=np.int64), ALPHA, rng
        )
        assert np.all(terminals == view.to_index(1))

    def test_empty_batch(self):
        g = ring_graph(3)
        view = csr_view(g)
        rng = np.random.default_rng(2)
        out = sample_walk_terminals(view, np.empty(0, dtype=np.int64), ALPHA, rng)
        assert out.size == 0

    def test_terminals_are_valid_indices(self):
        g = complete_graph(8)
        view = csr_view(g)
        rng = np.random.default_rng(3)
        starts = rng.integers(0, 8, size=1000)
        terminals = sample_walk_terminals(view, starts, ALPHA, rng)
        assert np.all((terminals >= 0) & (terminals < 8))

    def test_alpha_one_terminates_immediately(self):
        g = complete_graph(4)
        view = csr_view(g)
        rng = np.random.default_rng(4)
        starts = np.arange(4, dtype=np.int64)
        terminals = sample_walk_terminals(view, starts, 1.0 - 1e-12, rng)
        np.testing.assert_array_equal(terminals, starts)

    def test_deterministic_given_seed(self):
        g = complete_graph(6)
        view = csr_view(g)
        starts = np.zeros(100, dtype=np.int64)
        a = sample_walk_terminals(view, starts, ALPHA, np.random.default_rng(9))
        b = sample_walk_terminals(view, starts, ALPHA, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)


def test_walk_steps_estimate():
    assert walk_steps_estimate(100, 0.2) == pytest.approx(400.0)
    assert walk_steps_estimate(0, 0.2) == 0.0


class TestWalkIndex:
    def _index(self, graph, walks_per_unit=2.0, seed=0):
        view = csr_view(graph)
        rng = np.random.default_rng(seed)
        return view, WalkIndex(view, ALPHA, walks_per_unit, rng)

    def test_counts_scale_with_degree(self):
        g = complete_graph(5)  # every out-degree 4
        _, index = self._index(g, walks_per_unit=2.0)
        assert np.all(index.counts == 8)
        assert index.total_walks == 40

    def test_minimum_one_walk_per_node(self):
        g = DynamicGraph.from_edges([(0, 1)])  # node 1 dangling
        _, index = self._index(g, walks_per_unit=1e-9)
        assert np.all(index.counts >= 1)

    def test_terminals_for_truncates(self):
        g = complete_graph(4)
        _, index = self._index(g, walks_per_unit=3.0)
        got = index.terminals_for(0, 2)
        assert got.size == 2

    def test_terminals_for_recycles_when_short(self):
        g = complete_graph(4)
        _, index = self._index(g, walks_per_unit=1.0)  # 3 walks per node
        got = index.terminals_for(0, 10)
        assert got.size == 10
        stored = index.terminals[index.offsets[0]:index.offsets[1]]
        np.testing.assert_array_equal(got[:3], stored)

    def test_rebuild_changes_view(self):
        g = ring_graph(5)
        view, index = self._index(g)
        g.add_edge(0, 2)
        new_view = csr_view(g)
        sampled = index.rebuild(new_view)
        assert index.view is new_view
        assert sampled == index.total_walks

    def test_refresh_nodes_only_touches_selected(self):
        g = complete_graph(6)
        view, index = self._index(g, walks_per_unit=5.0, seed=1)
        before = index.terminals.copy()
        resampled = index.refresh_nodes(view, np.array([2]))
        lo, hi = index.offsets[2], index.offsets[3]
        assert resampled == hi - lo
        # untouched slices are bit-identical
        np.testing.assert_array_equal(index.terminals[:lo], before[:lo])
        np.testing.assert_array_equal(index.terminals[hi:], before[hi:])

    def test_refresh_empty_selection(self):
        g = ring_graph(4)
        view, index = self._index(g)
        assert index.refresh_nodes(view, np.empty(0, dtype=np.int64)) == 0

    def test_refresh_nodes_tracks_degree_churn(self):
        """Regression: refreshed nodes re-derive their walk budget from
        the *current* out-degree instead of keeping the build-time
        count forever (the stale-count drift bug)."""
        g = complete_graph(6)
        view, index = self._index(g, walks_per_unit=2.0, seed=3)
        assert index.counts[0] == 10  # ceil(2.0 * 5)

        # degree churn both ways: node 0 gains an edge, node 1 loses one
        g.add_node(6)
        g.add_edge(0, 6)
        g.remove_edge(1, 2)
        view = csr_view(g)
        index.refresh_nodes(view, np.array([0, 1]))

        expected = np.maximum(
            np.ceil(
                index.walks_per_unit * np.maximum(view.out_deg, 1)
            ).astype(np.int64),
            1,
        )
        assert index.counts[view.to_index(0)] == expected[view.to_index(0)]
        assert index.counts[view.to_index(1)] == expected[view.to_index(1)]
        assert index.total_walks == int(index.counts.sum())
        # every row (grown, shrunk, untouched, and the brand-new node
        # 6) serves in-range terminals sized to its current budget
        for i in range(view.n):
            row = index.terminals_for(i, int(index.counts[i]))
            assert row.size == int(index.counts[i])
            assert ((row >= 0) & (row < view.n)).all()

    def test_traced_sampling_consumes_rng_identically(self):
        """The trace parameter must not perturb the random stream:
        seeded terminals are bit-for-bit equal traced and untraced."""
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        # node 3 dangling: exercises the held-walk pseudo-step record
        view = csr_view(g)
        starts = np.arange(4, dtype=np.int64).repeat(200)
        plain = sample_walk_terminals(
            view, starts, ALPHA, np.random.default_rng(7)
        )
        trace = []
        traced = sample_walk_terminals(
            view, starts, ALPHA, np.random.default_rng(7), trace=trace
        )
        np.testing.assert_array_equal(plain, traced)
        assert trace  # something was recorded

    def test_index_distribution_statistics(self):
        """Stored terminals for a node follow its PPR distribution."""
        g = ring_graph(4)
        view = csr_view(g)
        rng = np.random.default_rng(5)
        index = WalkIndex(view, ALPHA, walks_per_unit=5000.0, rng=rng)
        exact = ppr_exact(g, 0, alpha=ALPHA)
        lo, hi = index.offsets[0], index.offsets[1]
        stored = index.terminals[lo:hi]
        counts = np.bincount(stored, minlength=4) / stored.size
        for t in range(4):
            assert counts[t] == pytest.approx(exact[t], abs=0.02)
