"""Tests for PPRParams, PPRVector, and SubProcessTimers."""

import math
import time

import numpy as np
import pytest

from repro.graph import DynamicGraph
from repro.ppr import PPRParams, PPRVector, SubProcessTimers, csr_view
from repro.ppr.base import clip_unit


class TestPPRParams:
    def test_defaults_match_paper(self):
        p = PPRParams()
        assert p.alpha == 0.2
        assert p.epsilon == 0.5
        assert p.delta is None  # resolved to 1/n

    def test_resolved_delta_and_pf(self):
        p = PPRParams()
        assert p.resolved_delta(100) == pytest.approx(0.01)
        assert p.resolved_p_f(100) == pytest.approx(0.01)
        q = PPRParams(delta=0.05, p_f=0.02)
        assert q.resolved_delta(100) == 0.05
        assert q.resolved_p_f(100) == 0.02

    def test_num_walks_formula(self):
        p = PPRParams(walk_cap=10**12)
        n = 100
        expected = (2 * 0.5 / 3 + 2) * math.log(2 / 0.01) / (0.25 * 0.01)
        assert p.num_walks(n) == math.ceil(expected)

    def test_num_walks_respects_cap(self):
        p = PPRParams(walk_cap=500)
        assert p.num_walks(10**6) == 500

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"epsilon": 0.0},
            {"delta": 1.5},
            {"p_f": -0.1},
            {"walk_cap": 0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            PPRParams(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PPRParams().alpha = 0.5


class TestPPRVector:
    def _vector(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        view = csr_view(g)
        values = np.array([0.5, 0.3, 0.2])
        return PPRVector(values, view, source=0)

    def test_getitem_by_node_id(self):
        vec = self._vector()
        assert vec[0] == 0.5
        assert vec[2] == 0.2

    def test_get_with_default(self):
        vec = self._vector()
        assert vec.get(99, default=-1.0) == -1.0

    def test_len_and_iter(self):
        vec = self._vector()
        assert len(vec) == 3
        assert sorted(vec) == [0, 1, 2]

    def test_as_dict_threshold(self):
        vec = self._vector()
        assert vec.as_dict(threshold=0.25) == {0: 0.5, 1: pytest.approx(0.3)}

    def test_top_k(self):
        vec = self._vector()
        top = vec.top_k(2)
        assert [node for node, _ in top] == [0, 1]
        assert vec.top_k(0) == []
        assert len(vec.top_k(10)) == 3  # clamped to n

    def test_total_mass(self):
        assert self._vector().total_mass() == pytest.approx(1.0)


class TestSubProcessTimers:
    def test_measure_accumulates(self):
        timers = SubProcessTimers()
        with timers.measure("A"):
            time.sleep(0.002)
        with timers.measure("A"):
            time.sleep(0.002)
        assert timers.count("A") == 2
        assert timers.total("A") >= 0.004
        assert timers.mean("A") >= 0.002

    def test_add_pre_measured(self):
        timers = SubProcessTimers()
        timers.add("B", 1.5, count=3)
        assert timers.total("B") == 1.5
        assert timers.count("B") == 3
        assert timers.mean("B") == 0.5

    def test_unknown_name_is_zero(self):
        timers = SubProcessTimers()
        assert timers.total("nope") == 0.0
        assert timers.mean("nope") == 0.0

    def test_measure_charges_on_exception(self):
        timers = SubProcessTimers()
        with pytest.raises(RuntimeError):
            with timers.measure("C"):
                raise RuntimeError("boom")
        assert timers.count("C") == 1

    def test_snapshot_and_reset(self):
        timers = SubProcessTimers()
        timers.add("A", 1.0)
        snap = timers.snapshot()
        timers.reset()
        assert snap == {"A": 1.0}
        assert timers.total("A") == 0.0
        assert timers.names() == []


def test_clip_unit():
    assert clip_unit(0.5) == 0.5
    assert 0 < clip_unit(-3.0) < 1e-6
    assert 1 - 1e-6 < clip_unit(7.0) < 1
