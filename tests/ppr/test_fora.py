"""Tests for FORA and FORA+."""

import numpy as np
import pytest

from repro.graph import EdgeUpdate
from repro.ppr import Fora, ForaPlus, ppr_exact


class TestFora:
    def test_query_accuracy(self, small_ba_graph, params):
        alg = Fora(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        estimate = alg.query(0)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.02
        assert estimate.total_mass() == pytest.approx(1.0, abs=0.05)

    def test_relative_error_guarantee_spotcheck(self, small_ba_graph, params):
        """Eq. 1 on nodes above delta (statistical; seeded)."""
        alg = Fora(small_ba_graph, params)
        alg.seed(1)
        exact = ppr_exact(small_ba_graph, 5, alpha=params.alpha)
        estimate = alg.query(5)
        delta = params.resolved_delta(120)
        for v in range(120):
            if exact[v] > delta:
                rel = abs(estimate[v] - exact[v]) / exact[v]
                assert rel <= params.epsilon

    def test_update_is_graph_only(self, small_ba_graph, params):
        alg = Fora(small_ba_graph, params)
        resolved = alg.apply_update(EdgeUpdate(0, 99))
        assert resolved.kind in ("insert", "delete")
        assert alg.timers.count("Graph Update") == 1
        assert alg.timers.count("Index Build") == 0

    def test_query_reflects_update(self, params):
        from repro.graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1), (1, 0)])
        alg = Fora(g, params)
        alg.seed(2)
        alg.apply_update(EdgeUpdate(0, 2))  # insert 0 -> 2
        estimate = alg.query(0)
        assert estimate[2] > 0.0

    def test_default_r_max_formula(self, small_ba_graph, params):
        alg = Fora(small_ba_graph, params)
        view = alg.view
        k = params.num_walks(view.n)
        expected = 1.0 / np.sqrt(params.alpha * view.m * k)
        assert alg.r_max == pytest.approx(expected)

    def test_set_hyperparameters(self, small_ba_graph, params):
        alg = Fora(small_ba_graph, params)
        alg.set_hyperparameters(r_max=0.01)
        assert alg.r_max == 0.01
        with pytest.raises(ValueError):
            alg.set_hyperparameters(nope=0.5)
        with pytest.raises(ValueError):
            alg.set_hyperparameters(r_max=2.0)

    def test_smaller_r_max_fewer_walks(self, small_ba_graph, params):
        alg = Fora(small_ba_graph, params)
        alg.seed(3)
        alg.set_hyperparameters(r_max=1e-2)
        alg.query(0)
        coarse_walks = alg.last_query_stats.walks
        coarse_pushes = alg.last_query_stats.pushes
        alg.set_hyperparameters(r_max=1e-5)
        alg.query(0)
        assert alg.last_query_stats.walks < coarse_walks
        assert alg.last_query_stats.pushes > coarse_pushes

    def test_timers_populated(self, small_ba_graph, params):
        alg = Fora(small_ba_graph, params)
        alg.query(0)
        assert alg.timers.count("Forward Push") == 1
        assert alg.timers.count("Random Walk") == 1


class TestForaPlus:
    def test_query_accuracy(self, small_ba_graph, params):
        alg = ForaPlus(small_ba_graph, params)
        alg.seed(0)
        exact = ppr_exact(small_ba_graph, 0, alpha=params.alpha)
        estimate = alg.query(0)
        errors = [abs(estimate[v] - exact[v]) for v in range(120)]
        assert max(errors) < 0.03

    def test_update_rebuilds_index(self, small_ba_graph, params):
        alg = ForaPlus(small_ba_graph, params)
        builds_before = alg.timers.count("Index Build")
        alg.apply_update(EdgeUpdate(0, 50))
        assert alg.timers.count("Index Build") == builds_before + 1

    def test_compaction_does_not_rebuild_index(self, small_ba_graph, params):
        """Regression: a fresh CSR view *object* at the same graph
        version (e.g. after slack-slot compaction) must not trigger an
        O(m r_max K) index rebuild — the trigger keys on version."""
        alg = ForaPlus(small_ba_graph, params)
        alg.seed(1)
        builds_before = alg.timers.count("Index Build")
        small_ba_graph._csr_cache = None  # force a brand-new view object
        assert alg.view is not alg.index.view
        alg.query(0)
        assert alg.timers.count("Index Build") == builds_before

    def test_invalid_index_maintenance_rejected(self, small_ba_graph, params):
        import pytest

        with pytest.raises(ValueError, match="index_maintenance"):
            ForaPlus(small_ba_graph, params, index_maintenance="lazy")

    def test_index_budget_tracks_r_max(self, small_ba_graph, params):
        alg = ForaPlus(small_ba_graph, params)
        walks_default = alg.index.total_walks
        alg.set_hyperparameters(r_max=alg.r_max * 4)
        assert alg.index.total_walks > walks_default

    def test_query_after_update_uses_fresh_index(self, params):
        from repro.graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 0)])
        alg = ForaPlus(g, params)
        alg.seed(4)
        alg.apply_update(EdgeUpdate(1, 2))  # delete 1 -> 2
        estimate = alg.query(0)
        exact = ppr_exact(g, 0, alpha=params.alpha)
        assert abs(estimate[2] - exact[2]) < 0.05

    def test_is_index_based_flags(self, small_ba_graph, params):
        assert not Fora(small_ba_graph, params).is_index_based
        assert ForaPlus(small_ba_graph.copy(), params).is_index_based
