"""Helpers for timing-sensitive tests.

Tests that compare *measured* execution times are vulnerable to
garbage-collection pauses landing inside one of the compared runs
(hypothesis-heavy test modules leave plenty of garbage behind).  The
fixture below collects once, then disables the collector for the
duration of the test.
"""

import gc

import pytest


@pytest.fixture
def no_gc():
    """Collect pending garbage, then switch GC off for this test."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
