"""End-to-end fuzzing: random configurations must never crash and must
keep the cross-subsystem invariants.

Hypothesis drives random graph shapes, algorithm choices, rates, Seed
budgets and seeds through the full QuotaSystem pipeline; every run
checks the structural invariants (request conservation, FCFS start
order, graph consistency, non-negative estimates) rather than timing.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import QuotaSystem
from repro.graph import barabasi_albert_graph, erdos_renyi_graph
from repro.ppr import ALGORITHMS, PPRParams
from repro.queueing import generate_workload
from repro.queueing.workload import QUERY, UPDATE

FAST_ALGORITHMS = ["FORA", "FORA+", "SpeedPPR", "Agenda", "ResAcc"]


def build_graph(kind: str, n: int, seed: int):
    if kind == "ba":
        return barabasi_albert_graph(max(n, 6), attach=2, seed=seed)
    return erdos_renyi_graph(max(n, 6), m=3 * max(n, 6), seed=seed)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(["ba", "er"]),
    n=st.integers(8, 60),
    algorithm=st.sampled_from(FAST_ALGORITHMS),
    lambda_q=st.floats(1.0, 50.0),
    ratio=st.floats(0.1, 8.0),
    epsilon_r=st.sampled_from([0.0, 0.3, 2.0]),
    seed=st.integers(0, 1000),
)
def test_pipeline_never_crashes_and_conserves(
    kind, n, algorithm, lambda_q, ratio, epsilon_r, seed
):
    graph = build_graph(kind, n, seed % 7)
    params = PPRParams(walk_cap=200)
    alg = ALGORITHMS[algorithm](graph.copy(), params)
    alg.seed(seed)
    workload = generate_workload(
        graph, lambda_q, lambda_q * ratio, 0.5, rng=seed
    )
    system = QuotaSystem(alg, epsilon_r=epsilon_r)

    estimates = []
    result = system.process(
        workload,
        query_callback=lambda req, est, pending: estimates.append(est),
    )

    # conservation: every request completes exactly once
    assert len(result) == len(workload)
    assert len(result.of_kind(QUERY)) == workload.num_queries
    assert len(result.of_kind(UPDATE)) == workload.num_updates

    # the server never runs backwards
    starts = [c.start for c in result.completed]
    assert starts == sorted(starts)
    for c in result.completed:
        assert c.finish >= c.start >= 0.0
        assert c.start >= c.arrival - 1e-12

    # graph ends in the deterministic post-update state
    shadow = graph.copy()
    for request in workload:
        if request.kind == UPDATE:
            request.update.apply(shadow)
    assert set(alg.graph.edges()) == set(shadow.edges())

    # estimates stay sane regardless of configuration
    for est in estimates:
        assert np.all(est.values >= 0.0)
        assert est.values.sum() < 1.5


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(8, 40),
    r_max_exp=st.floats(-6.0, -0.5),
    r_max_b_exp=st.floats(-6.0, -0.5),
    seed=st.integers(0, 100),
)
def test_agenda_any_hyperparameters_stay_consistent(
    n, r_max_exp, r_max_b_exp, seed
):
    """Agenda must serve correctly at *any* beta Quota could pick."""
    graph = barabasi_albert_graph(max(n, 6), attach=2, seed=1)
    alg = ALGORITHMS["Agenda"](graph, PPRParams(walk_cap=150))
    alg.seed(seed)
    alg.set_hyperparameters(
        r_max=10.0**r_max_exp, r_max_b=10.0**r_max_b_exp
    )
    workload = generate_workload(graph, 20.0, 20.0, 0.3, rng=seed)
    result = QuotaSystem(alg).process(workload)
    assert len(result) == len(workload)
    estimate = alg.query(0)
    assert np.all(estimate.values >= 0.0)
    assert 0.3 < estimate.values.sum() < 1.5
