"""End-to-end fuzzing: random configurations must never crash and must
keep the cross-subsystem invariants.

Hypothesis drives random graph shapes, algorithm choices, rates, Seed
budgets and seeds through the full QuotaSystem pipeline; every run
checks the structural invariants (request conservation, FCFS start
order, graph consistency, non-negative estimates) rather than timing.
"""

import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import QuotaSystem
from repro.graph import barabasi_albert_graph, erdos_renyi_graph
from repro.graph.updates import random_update_stream
from repro.ppr import ALGORITHMS, PPRParams, csr_view
from repro.ppr.csr import CSRView
from repro.queueing import generate_workload
from repro.queueing.workload import QUERY, UPDATE
from tests.ppr.test_csr import assert_views_equivalent

FAST_ALGORITHMS = ["FORA", "FORA+", "SpeedPPR", "Agenda", "ResAcc"]


def build_graph(kind: str, n: int, seed: int):
    if kind == "ba":
        return barabasi_albert_graph(max(n, 6), attach=2, seed=seed)
    return erdos_renyi_graph(max(n, 6), m=3 * max(n, 6), seed=seed)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(["ba", "er"]),
    n=st.integers(8, 60),
    algorithm=st.sampled_from(FAST_ALGORITHMS),
    lambda_q=st.floats(1.0, 50.0),
    ratio=st.floats(0.1, 8.0),
    epsilon_r=st.sampled_from([0.0, 0.3, 2.0]),
    seed=st.integers(0, 1000),
)
def test_pipeline_never_crashes_and_conserves(
    kind, n, algorithm, lambda_q, ratio, epsilon_r, seed
):
    graph = build_graph(kind, n, seed % 7)
    params = PPRParams(walk_cap=200)
    alg = ALGORITHMS[algorithm](graph.copy(), params)
    alg.seed(seed)
    workload = generate_workload(
        graph, lambda_q, lambda_q * ratio, 0.5, rng=seed
    )
    system = QuotaSystem(alg, epsilon_r=epsilon_r)

    estimates = []
    result = system.process(
        workload,
        query_callback=lambda req, est, pending: estimates.append(est),
    )

    # conservation: every request completes exactly once
    assert len(result) == len(workload)
    assert len(result.of_kind(QUERY)) == workload.num_queries
    assert len(result.of_kind(UPDATE)) == workload.num_updates

    # the server never runs backwards
    starts = [c.start for c in result.completed]
    assert starts == sorted(starts)
    for c in result.completed:
        assert c.finish >= c.start >= 0.0
        assert c.start >= c.arrival - 1e-12

    # graph ends in the deterministic post-update state
    shadow = graph.copy()
    for request in workload:
        if request.kind == UPDATE:
            request.update.apply(shadow)
    assert set(alg.graph.edges()) == set(shadow.edges())

    # estimates stay sane regardless of configuration
    for est in estimates:
        assert np.all(est.values >= 0.0)
        assert est.values.sum() < 1.5


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(8, 40),
    r_max_exp=st.floats(-6.0, -0.5),
    r_max_b_exp=st.floats(-6.0, -0.5),
    seed=st.integers(0, 100),
)
def test_agenda_any_hyperparameters_stay_consistent(
    n, r_max_exp, r_max_b_exp, seed
):
    """Agenda must serve correctly at *any* beta Quota could pick."""
    graph = barabasi_albert_graph(max(n, 6), attach=2, seed=1)
    alg = ALGORITHMS["Agenda"](graph, PPRParams(walk_cap=150))
    alg.seed(seed)
    alg.set_hyperparameters(
        r_max=10.0**r_max_exp, r_max_b=10.0**r_max_b_exp
    )
    workload = generate_workload(graph, 20.0, 20.0, 0.3, rng=seed)
    result = QuotaSystem(alg).process(workload)
    assert len(result) == len(workload)
    estimate = alg.query(0)
    assert np.all(estimate.values >= 0.0)
    assert 0.3 < estimate.values.sum() < 1.5


# ----------------------------------------------------------------------
# Incremental CSR equivalence: a patched view must be element-for-element
# identical (up to within-row neighbor order) to a freshly built one.
# ----------------------------------------------------------------------
def test_incremental_csr_equivalence_long_stream():
    """>= 1000 randomized insert/delete updates with interleaved
    catch-ups at varying strides; zero divergence allowed."""
    rng = random.Random(42)
    g = barabasi_albert_graph(150, attach=2, seed=6)
    csr_view(g)  # warm the incremental store
    applied = 0
    for stride in (1, 3, 7, 20):
        for i, update in enumerate(random_update_stream(g, 300, rng)):
            update.apply(g)
            applied += 1
            if i % stride == 0:
                assert_views_equivalent(csr_view(g), CSRView(g))
        assert_views_equivalent(csr_view(g), CSRView(g))
    assert applied >= 1000


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(5, 40),
    num_updates=st.integers(1, 120),
    stride=st.integers(1, 10),
    seed=st.integers(0, 10_000),
)
def test_incremental_csr_equivalence_random_shapes(
    n, num_updates, stride, seed
):
    rng = random.Random(seed)
    g = barabasi_albert_graph(n, attach=2, seed=seed % 13)
    csr_view(g)
    for i, update in enumerate(random_update_stream(g, num_updates, rng)):
        update.apply(g)
        if i % stride == 0:
            assert_views_equivalent(csr_view(g), CSRView(g))
    assert_views_equivalent(csr_view(g), CSRView(g))


def test_incremental_csr_equivalence_with_node_churn():
    """Edge toggles interleaved with brand-new node ids and occasional
    node removals (the rebuild fallback path)."""
    rng = random.Random(7)
    g = barabasi_albert_graph(40, attach=2, seed=2)
    csr_view(g)
    next_id = g.num_nodes
    for step in range(400):
        roll = rng.random()
        if roll < 0.80:
            u = rng.randrange(g.num_nodes)
            v = rng.randrange(g.num_nodes)
            g.toggle_edge(
                sorted(g.nodes())[u % g.num_nodes],
                sorted(g.nodes())[v % g.num_nodes],
            )
        elif roll < 0.95:
            # attach a never-seen node via an edge, as in the paper's
            # "insert of a new node u is linked with an update (u, v)"
            anchor = rng.choice(sorted(g.nodes()))
            g.add_edge(next_id, anchor)
            next_id += 1
        else:
            victim = rng.choice(sorted(g.nodes()))
            g.remove_node(victim)
        if step % 5 == 0:
            assert_views_equivalent(csr_view(g), CSRView(g))
    assert_views_equivalent(csr_view(g), CSRView(g))
