"""Repository-wide test fixtures."""

from tests.timing_utils import no_gc  # noqa: F401  (re-exported fixture)
