"""End-to-end integration tests across subsystem boundaries.

These replicate miniature versions of the paper's experiments and check
*relationships* (who wins, what stays invariant) rather than absolute
timings, so they are robust to machine speed.
"""

import numpy as np
import pytest

from repro.core import (
    QuotaController,
    QuotaSystem,
    calibrated_cost_model,
)
from repro.evaluation import (
    AccuracySummary,
    improvement_percent,
)
from repro.graph import barabasi_albert_graph
from repro.ppr import Agenda, Fora, ForaPlus, PPRParams
from repro.queueing import (
    expected_response_time,
    generate_workload,
    traffic_intensity,
)
from repro.queueing.workload import QUERY, UPDATE


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(300, attach=3, seed=31)


@pytest.fixture(scope="module")
def params():
    return PPRParams(alpha=0.2, epsilon=0.5, walk_cap=2000)


class TestQuotaEndToEnd:
    def test_quota_not_worse_under_contention(self, graph, params, no_gc):
        """The paper's core claim on a miniature Figure 3 cell.

        Moderately loaded cell (~0.45): Quota's configuration must stay
        in the default's neighbourhood or better.  The decisive *wins*
        live at heavier loads, which sit on a stability knife edge
        where wall-time jitter makes single runs non-deterministic —
        the Fig. 3 / Table VII benches cover that regime with full
        workload replays; this test guards against regressions that
        would make Quota *worse* than the default.
        """
        lq, lu = 40.0, 120.0
        workload = generate_workload(graph, lq, lu, 6.0, rng=1)

        base_medians, quota_medians = [], []
        for _ in range(2):
            baseline = Agenda(graph.copy(), params)
            baseline.seed(0)
            base_medians.append(
                QuotaSystem(baseline)
                .process(workload)
                .percentile_query_response_time(50)
            )
            tuned = Agenda(graph.copy(), params)
            tuned.seed(0)
            controller = QuotaController(
                calibrated_cost_model(tuned, rng=2),
                extra_starts=[tuned.get_hyperparameters()],
            )
            system = QuotaSystem(tuned, controller)
            system.configure_static(lq, lu)
            quota_medians.append(
                system.process(workload).percentile_query_response_time(50)
            )
        # medians are robust to measured-time burst noise
        assert np.mean(quota_medians) <= np.mean(base_medians) * 1.5

    def test_quota_accuracy_preserved(self, graph, params):
        """Tuning hyperparameters must not break the Eq. 1 guarantee."""
        lq, lu = 20.0, 20.0
        workload = generate_workload(graph, lq, lu, 3.0, rng=3)
        shadow = graph.copy()
        for request in workload:
            if request.kind == UPDATE:
                request.update.apply(shadow)

        tuned = Agenda(graph.copy(), params)
        tuned.seed(1)
        controller = QuotaController(
            calibrated_cost_model(tuned, rng=4),
            extra_starts=[tuned.get_hyperparameters()],
        )
        system = QuotaSystem(tuned, controller)
        system.configure_static(lq, lu)

        errors = []

        def callback(request, estimate, pending):
            errors.append(
                AccuracySummary.compare(estimate, shadow, params.alpha)
            )

        system.process(workload, query_callback=callback)
        assert errors
        worst = max(e.max_absolute_error for e in errors)
        assert worst < 0.1

    def test_model_predicts_measured_load(self, graph, params):
        """The calibrated model's rho must track the replayed load."""
        lq, lu = 25.0, 25.0
        workload = generate_workload(graph, lq, lu, 5.0, rng=5)
        algorithm = Agenda(graph.copy(), params)
        algorithm.seed(2)
        model = calibrated_cost_model(algorithm, rng=6)
        beta = algorithm.get_hyperparameters()
        t_q = model.query_time(beta, lq, lu)
        t_u = model.update_time(beta)
        predicted_rho = traffic_intensity(lq, lu, t_q, t_u)
        result = QuotaSystem(algorithm).process(workload)
        measured = result.empirical_load()
        assert predicted_rho == pytest.approx(measured, rel=1.0)

    def test_eq2_predicts_measured_response(self, graph, params):
        """At moderate load, Eq. 2 with measured service times should be
        within a small factor of the replayed mean response time."""
        lq, lu = 25.0, 25.0
        workload = generate_workload(graph, lq, lu, 6.0, rng=7)
        algorithm = Fora(graph.copy(), params)
        algorithm.seed(3)
        result = QuotaSystem(algorithm).process(workload)
        t_q = result.mean_service_time(QUERY)
        t_u = result.mean_service_time(UPDATE)
        prediction = expected_response_time(lq, lu, t_q, t_u)
        measured = result.mean_query_response_time()
        assert measured == pytest.approx(prediction, rel=1.5)


class TestSeedEndToEnd:
    def test_seed_improves_update_heavy_foraplus(self, graph, params, no_gc):
        """A Figure 8-style cell: Seed must help FORA+ when updates are
        expensive and the queue is contended."""
        lq, lu = 60.0, 240.0
        workload = generate_workload(graph, lq, lu, 2.0, rng=8)
        # measured service times jitter run to run; average medians of
        # 4 replays, alternating which variant runs first so machine
        # drift within a replay cancels out
        plain_medians, seeded_medians = [], []
        for replay in range(4):
            plain_alg = ForaPlus(graph.copy(), params)
            plain_alg.seed(4)
            seeded_alg = ForaPlus(graph.copy(), params)
            seeded_alg.seed(4)
            runs = [
                ("plain", QuotaSystem(plain_alg)),
                ("seed", QuotaSystem(seeded_alg, epsilon_r=1.0)),
            ]
            if replay % 2:
                runs.reverse()
            for label, system in runs:
                median = system.process(
                    workload
                ).percentile_query_response_time(50)
                (plain_medians if label == "plain" else seeded_medians).append(
                    median
                )
        improvement = improvement_percent(
            float(np.mean(plain_medians)), float(np.mean(seeded_medians))
        )
        assert improvement > -25.0  # never materially worse on average
        # the graph must end in the same state either way
        assert set(plain_alg.graph.edges()) == set(seeded_alg.graph.edges())

    def test_final_graph_state_independent_of_epsilon(self, graph, params):
        workload = generate_workload(graph, 20.0, 40.0, 2.0, rng=9)
        states = []
        for eps in (0.0, 0.5, 5.0):
            alg = Fora(graph.copy(), params)
            alg.seed(5)
            QuotaSystem(alg, epsilon_r=eps).process(workload)
            states.append(frozenset(alg.graph.edges()))
        assert states[0] == states[1] == states[2]


class TestOnlineLoopEndToEnd:
    def test_online_tracks_rate_shift(self, graph, params):
        """After a big rate shift, the online loop must reconfigure."""
        from repro.queueing import WorkloadSegment, generate_segmented_workload

        segments = [
            WorkloadSegment(4.0, 30.0, 5.0),
            WorkloadSegment(4.0, 5.0, 60.0),
        ]
        workload = generate_segmented_workload(graph, segments, rng=10)
        algorithm = Agenda(graph.copy(), params)
        algorithm.seed(6)
        controller = QuotaController(
            calibrated_cost_model(algorithm, rng=11),
            extra_starts=[algorithm.get_hyperparameters()],
        )
        system = QuotaSystem(
            algorithm, controller, reoptimize_every=1.0, rate_window=3.0
        )
        system.process(workload)
        assert len(system.decisions) >= 2
        # the last decision must reflect the update-heavy second phase
        last = system.decisions[-1]
        first = system.decisions[0]
        assert last.beta != first.beta
