"""Tests for the shared benchmark machinery (scope control, cell setup)."""

import pytest

from benchmarks.common import (
    FIG3_SYSTEMS,
    FULL_RATIOS,
    QUICK_RATIOS,
    RATIO_LABELS,
    SystemSpec,
    bench_scope,
    dataset_names,
    dataset_workload,
    ratio_sweep,
    run_system,
    scoped,
    window_for,
)
from repro.evaluation import get_dataset


class TestScopeControl:
    def test_default_scope_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCOPE", raising=False)
        assert bench_scope() == "quick"
        assert scoped("a", "b") == "a"
        assert ratio_sweep() == QUICK_RATIOS

    def test_full_scope(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCOPE", "full")
        assert bench_scope() == "full"
        assert scoped("a", "b") == "b"
        assert ratio_sweep() == FULL_RATIOS
        assert len(dataset_names()) == 6

    def test_invalid_scope_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCOPE", "enormous")
        with pytest.raises(ValueError):
            bench_scope()

    def test_ratio_labels_cover_full_sweep(self):
        assert all(r in RATIO_LABELS for r in FULL_RATIOS)

    def test_window_capped_in_quick_scope(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCOPE", raising=False)
        spec = get_dataset("pokec")
        assert window_for(spec) <= 4.0


class TestFig3Systems:
    def test_paper_competitor_set(self):
        labels = [s.label for s in FIG3_SYSTEMS]
        assert labels == [
            "Quota", "Quota*", "Agenda", "FORA", "FORA+", "FORA*", "ResAcc"
        ]

    def test_seed_variants_flagged(self):
        by_label = {s.label: s for s in FIG3_SYSTEMS}
        assert by_label["Quota*"].epsilon_r > 0
        assert by_label["FORA*"].epsilon_r > 0
        assert by_label["Agenda"].epsilon_r == 0


class TestCellSetup:
    def test_dataset_workload_shapes(self):
        spec, graph, workload, lq, lu = dataset_workload(
            "webs", ratio=0.5, seed=1, window=1.0
        )
        assert spec.name == "webs"
        assert lu == pytest.approx(lq * 0.5)
        assert workload.t_end == 1.0
        assert graph.num_nodes == spec.nodes

    def test_run_system_baseline(self):
        spec, graph, workload, lq, lu = dataset_workload(
            "webs", ratio=1.0, seed=2, lambda_q=10.0, window=0.5
        )
        result = run_system(
            SystemSpec("FORA", "FORA"), spec, graph, workload, lq, lu
        )
        assert len(result) == len(workload)

    def test_run_system_does_not_mutate_shared_graph(self):
        spec, graph, workload, lq, lu = dataset_workload(
            "webs", ratio=1.0, seed=3, lambda_q=10.0, window=0.5
        )
        edges_before = set(graph.edges())
        run_system(SystemSpec("FORA", "FORA"), spec, graph, workload, lq, lu)
        assert set(graph.edges()) == edges_before
