"""Tests for the sparkline and ASCII-histogram report helpers."""

import pytest

from repro.evaluation import ascii_histogram, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes_mapped_to_extreme_blocks(self):
        line = sparkline([0.0, 10.0])
        assert line[0] == " "
        assert line[-1] == "█"

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4, 5])
        blocks = " ▁▂▃▄▅▆▇█"
        levels = [blocks.index(c) for c in line]
        assert levels == sorted(levels)


class TestAsciiHistogram:
    def test_counts_sum_to_input(self):
        out = ascii_histogram([1, 1, 2, 3, 3, 3, 9], bins=4)
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(counts) == 7

    def test_bin_count(self):
        out = ascii_histogram(list(range(100)), bins=5)
        assert len(out.splitlines()) == 5

    def test_peak_bin_has_longest_bar(self):
        out = ascii_histogram([1] * 10 + [5], bins=2, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty(self):
        assert ascii_histogram([]) == "(no data)"

    def test_constant_values(self):
        out = ascii_histogram([2.0, 2.0], width=10)
        assert "#" * 10 in out
        assert "(2)" in out

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ascii_histogram([1, 2], bins=0)
        with pytest.raises(ValueError):
            ascii_histogram([1, 2], width=0)

    def test_zero_count_bin_has_no_bar(self):
        out = ascii_histogram([0.0, 0.0, 10.0], bins=5, width=10)
        middle_lines = out.splitlines()[1:-1]
        assert any("|  " in line or line.rstrip().endswith("0")
                   for line in middle_lines)
