"""Tests for the experiment runner."""

import pytest

from repro.evaluation import (
    DatasetSpec,
    ExperimentConfig,
    build_algorithm,
    run_experiment,
)
from repro.queueing import generate_workload

TINY = DatasetSpec(
    name="tiny", nodes=80, edges=400, directed=True, kind="ba",
    lambda_q=20.0, window=1.5, walk_cap=500,
)


class TestBuildAlgorithm:
    def test_builds_registered_algorithm(self):
        graph = TINY.build(seed=0)
        alg = build_algorithm("FORA", graph, walk_cap=500, seed=1)
        assert alg.name == "FORA"
        assert alg.params.walk_cap == 500

    def test_unknown_algorithm(self):
        graph = TINY.build(seed=0)
        with pytest.raises(KeyError):
            build_algorithm("PageRank2000", graph, walk_cap=500)


class TestRunExperiment:
    def test_baseline_run(self):
        config = ExperimentConfig(
            algorithm="FORA", lambda_q=20.0, lambda_u=10.0, window=1.0
        )
        outcome = run_experiment(TINY, config)
        assert outcome.response.count > 0
        assert outcome.mean_response_time > 0
        assert outcome.decision is None
        assert "Forward Push" in outcome.subprocess_totals

    def test_quota_run_records_decision(self):
        config = ExperimentConfig(
            algorithm="FORA",
            use_quota=True,
            lambda_q=20.0,
            lambda_u=10.0,
            window=1.0,
            calibration_queries=2,
        )
        outcome = run_experiment(TINY, config)
        assert outcome.decision is not None
        assert 0 < outcome.decision.beta["r_max"] < 1

    def test_quota_c_ablation_differs(self):
        """Dropping constants must change the chosen configuration."""
        base = ExperimentConfig(
            algorithm="FORA", use_quota=True, lambda_q=20.0, lambda_u=10.0,
            window=1.0, calibration_queries=2,
        )
        ablated = ExperimentConfig(
            algorithm="FORA", use_quota=True, quota_without_constants=True,
            lambda_q=20.0, lambda_u=10.0, window=1.0, calibration_queries=2,
        )
        a = run_experiment(TINY, base)
        b = run_experiment(TINY, ablated)
        assert a.decision.beta != b.decision.beta

    def test_shared_workload_paired_comparison(self):
        """Passing graph+workload replays identical request sequences."""
        graph = TINY.build(seed=5)
        workload = generate_workload(graph, 20.0, 10.0, 1.0, rng=9)
        config = ExperimentConfig(algorithm="FORA")
        a = run_experiment(TINY, config, workload=workload, graph=graph)
        b = run_experiment(TINY, config, workload=workload, graph=graph)
        assert a.response.count == b.response.count
        # the original graph must not have been mutated
        assert graph.num_nodes == 80

    def test_accuracy_measurement(self):
        config = ExperimentConfig(
            algorithm="FORA",
            lambda_q=30.0,
            lambda_u=10.0,
            window=1.0,
            measure_accuracy=True,
            accuracy_sample=5,
        )
        outcome = run_experiment(TINY, config)
        assert len(outcome.accuracy) >= 1
        assert outcome.mean_accuracy_error() < 0.2

    def test_seed_reordering_config(self):
        config = ExperimentConfig(
            algorithm="FORA+", epsilon_r=0.5, lambda_q=20.0, lambda_u=20.0,
            window=1.0,
        )
        outcome = run_experiment(TINY, config)
        assert outcome.response.count > 0

    def test_no_accuracy_by_default(self):
        config = ExperimentConfig(algorithm="FORA", window=0.5)
        outcome = run_experiment(TINY, config)
        assert outcome.accuracy == []
        assert outcome.mean_accuracy_error() == 0.0
