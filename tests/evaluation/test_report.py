"""Tests for the report formatting helpers."""

import pytest

from repro.evaluation import banner, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(
            ["Method", "R (ms)"],
            [["Agenda", 55.08], ["Quota", 7.47]],
        )
        lines = out.splitlines()
        assert lines[0].startswith("Method")
        assert "55.08" in out
        assert "7.47" in out
        # header separator present
        assert set(lines[1].replace(" ", "")) == {"-"}

    def test_title(self):
        out = format_table(["A"], [["x"]], title="Table VIII")
        assert out.splitlines()[0] == "Table VIII"
        assert out.splitlines()[1] == "=" * len("Table VIII")

    def test_float_format(self):
        out = format_table(["A"], [[0.123456]], float_format="{:.4f}")
        assert "0.1235" in out

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only one"]])

    def test_non_float_cells_stringified(self):
        out = format_table(["A", "B"], [[1, None]])
        assert "None" in out


class TestFormatSeries:
    def test_one_row_per_x(self):
        out = format_series(
            "ratio",
            ["1/8", "1/4"],
            {"Agenda": [90.4, 80.1], "Quota": [78.8, 70.0]},
        )
        lines = out.splitlines()
        assert len(lines) == 4  # header + separator + 2 rows
        assert "Agenda" in lines[0]
        assert "90.400" in out

    def test_series_lengths_must_match_x(self):
        with pytest.raises(IndexError):
            format_series("x", [1, 2, 3], {"s": [1.0]})


def test_banner_contains_text():
    out = banner("Figure 3")
    assert "Figure 3" in out
    assert out.count("#") > 10
