"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation import (
    AccuracySummary,
    ResponseTimeSummary,
    improvement_percent,
    precision_at_k,
)
from repro.graph import EdgeUpdate, ring_graph
from repro.ppr import Fora, PPRParams, ppr_exact
from repro.queueing import FCFSQueueSimulator, Request
from repro.queueing.workload import QUERY


def make_result(response_times):
    # arrivals widely spaced so response time == service time
    spaced = [
        Request(float(i * 1000), QUERY, source=0)
        for i in range(len(response_times))
    ]
    services = iter(response_times)
    sim = FCFSQueueSimulator(lambda r: next(services))
    return sim.run(spaced, t_end=1e6)


class TestResponseTimeSummary:
    def test_statistics(self):
        result = make_result([1.0, 2.0, 3.0, 4.0])
        summary = ResponseTimeSummary.from_result(result)
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.p50 == pytest.approx(2.5)
        assert summary.max == 4.0

    def test_empty(self):
        result = make_result([])
        summary = ResponseTimeSummary.from_result(result)
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_percentiles_ordered(self):
        result = make_result(list(np.linspace(0.1, 5.0, 50)))
        summary = ResponseTimeSummary.from_result(result)
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.max


class TestAccuracySummary:
    def test_perfect_estimate(self):
        graph = ring_graph(6)
        exact = ppr_exact(graph, 0, alpha=0.2)
        summary = AccuracySummary.compare(exact, graph, alpha=0.2)
        assert summary.max_absolute_error < 1e-9
        assert summary.max_relative_error < 1e-9

    def test_detects_estimation_error(self):
        graph = ring_graph(8)
        params = PPRParams(walk_cap=50)  # tiny K -> visible noise
        alg = Fora(graph, params)
        alg.seed(0)
        estimate = alg.query(0)
        summary = AccuracySummary.compare(estimate, graph, alpha=0.2)
        assert summary.max_absolute_error > 0.0
        assert summary.mean_absolute_error <= summary.max_absolute_error

    def test_stale_graph_shows_error(self):
        graph = ring_graph(8)
        exact_old = ppr_exact(graph, 0, alpha=0.2)
        fresh = graph.copy()
        EdgeUpdate(0, 4).apply(fresh)
        summary = AccuracySummary.compare(exact_old, fresh, alpha=0.2)
        assert summary.max_absolute_error > 0.01


class TestPrecisionAtK:
    def test_perfect_topk(self):
        graph = ring_graph(10)
        exact = ppr_exact(graph, 0, alpha=0.2)
        assert precision_at_k(exact.top_k(3), graph, 0, alpha=0.2) == 1.0

    def test_wrong_topk(self):
        graph = ring_graph(10)
        exact = ppr_exact(graph, 0, alpha=0.2)
        bottom = exact.top_k(10)[-3:]
        assert precision_at_k(bottom, graph, 0, alpha=0.2) < 1.0

    def test_empty(self):
        graph = ring_graph(5)
        assert precision_at_k([], graph, 0, alpha=0.2) == 0.0


class TestImprovementPercent:
    def test_paper_example(self):
        # (55.08 - 7.47) / 55.08 = 86.44% (Table VIII narrative)
        assert improvement_percent(55.08, 7.47) == pytest.approx(86.44, abs=0.01)

    def test_zero_baseline(self):
        assert improvement_percent(0.0, 1.0) == 0.0

    def test_regression_is_negative(self):
        assert improvement_percent(1.0, 2.0) == -100.0
