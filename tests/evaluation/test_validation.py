"""Tests for the cost-model fit diagnostics."""

import pytest

from repro.core import calibrated_cost_model, cost_model_for
from repro.evaluation import FitPoint, FitReport, model_fit_report
from repro.graph import barabasi_albert_graph
from repro.ppr import Fora, PPRParams


@pytest.fixture(scope="module")
def algorithm():
    graph = barabasi_albert_graph(120, attach=3, seed=50)
    return Fora(graph, PPRParams(walk_cap=1000))


class TestFitPoint:
    def test_log_errors(self):
        point = FitPoint(
            beta={"r_max": 0.1},
            measured_t_q=0.01,
            predicted_t_q=0.1,   # 10x off -> log error 1
            measured_t_u=0.01,
            predicted_t_u=0.01,  # exact -> 0
        )
        assert point.log_error_q() == pytest.approx(1.0)
        assert point.log_error_u() == pytest.approx(0.0)


class TestFitReport:
    def _report(self):
        good = FitPoint({"r": 0.1}, 0.01, 0.011, 0.02, 0.02)
        bad = FitPoint({"r": 0.2}, 0.01, 0.2, 0.02, 0.4)
        return FitReport(points=[good, bad])

    def test_aggregates(self):
        report = self._report()
        assert 0 < report.mean_log_error_q() < 1.5
        assert report.worst_log_error() > 1.0

    def test_within_factor(self):
        report = self._report()
        # the good point's two predictions are within 2x; the bad
        # point's two are not
        assert report.within_factor(2.0) == pytest.approx(0.5)
        assert report.within_factor(1000.0) == 1.0

    def test_empty_report(self):
        report = FitReport()
        assert report.mean_log_error_q() == 0.0
        assert report.worst_log_error() == 0.0
        assert report.within_factor(2.0) == 1.0


class TestModelFitReport:
    def test_calibrated_model_fits_near_anchor(self, algorithm):
        model = calibrated_cost_model(algorithm, rng=0)
        report = model_fit_report(
            algorithm, model, scales=(0.5, 1.0, 2.0), rng=1
        )
        assert len(report.points) == 3
        # near the calibration anchor the model should be within ~4x
        assert report.within_factor(4.0) >= 0.5

    def test_uncalibrated_model_fits_worse(self, algorithm):
        calibrated = calibrated_cost_model(algorithm, rng=0)
        unit = cost_model_for(algorithm)  # all taus = 1
        scales = (0.5, 1.0, 2.0)
        good = model_fit_report(algorithm, calibrated, scales=scales, rng=2)
        bad = model_fit_report(algorithm, unit, scales=scales, rng=2)
        assert good.mean_log_error_q() < bad.mean_log_error_q()

    def test_points_record_probed_betas(self, algorithm):
        model = calibrated_cost_model(algorithm, rng=0)
        report = model_fit_report(algorithm, model, scales=(0.5, 2.0), rng=3)
        r_values = [p.beta["r_max"] for p in report.points]
        assert r_values[0] < r_values[1]
