"""Tests for the dataset registry."""

import pytest

from repro.evaluation import DATASETS, get_dataset


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASETS) == {
            "webs", "dblp", "pokec", "lj", "orkut", "twitter"
        }

    def test_lookup_case_insensitive(self):
        assert get_dataset("DBLP").name == "dblp"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            get_dataset("facebook")

    def test_size_ladder_preserved(self):
        """The relative ordering of Table II must survive scaling."""
        node_order = ["webs", "dblp", "pokec", "lj"]
        node_counts = [DATASETS[name].nodes for name in node_order]
        assert node_counts == sorted(node_counts)
        edge_order = ["dblp", "pokec", "lj", "orkut", "twitter"]
        edge_counts = [DATASETS[name].edges for name in edge_order]
        assert edge_counts == sorted(edge_counts)

    def test_directedness_matches_table2(self):
        assert DATASETS["webs"].directed
        assert not DATASETS["dblp"].directed
        assert not DATASETS["orkut"].directed
        assert DATASETS["twitter"].directed


class TestBuild:
    def test_build_deterministic(self):
        spec = get_dataset("webs")
        a = spec.build(seed=3)
        b = spec.build(seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_build_approximate_size(self):
        spec = get_dataset("dblp")
        graph = spec.build(seed=0)
        assert graph.num_nodes == spec.nodes
        assert 0.3 * spec.edges < graph.num_edges < 4 * spec.edges

    def test_undirected_dataset_symmetric(self):
        graph = get_dataset("dblp").build(seed=1)
        for u, v in list(graph.edges())[:200]:
            assert graph.has_edge(v, u)

    def test_scale_shrinks(self):
        spec = get_dataset("pokec")
        small = spec.build(seed=0, scale=0.1)
        assert small.num_nodes == pytest.approx(spec.nodes * 0.1, rel=0.2)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_dataset("webs").build(scale=0.0)
