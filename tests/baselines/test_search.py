"""Tests for the Grid / Random / Bayesian search baselines."""

import math

import numpy as np
import pytest

from repro.baselines import (
    BayesianOptimizationSearch,
    GridSearch,
    RandomSearch,
)


def bowl(beta):
    """Convex-in-log objective with minimum at r_max = 1e-3."""
    return (math.log10(beta["r_max"]) + 3.0) ** 2


def bowl2(beta):
    return (math.log10(beta["r_max"]) + 3.0) ** 2 + (
        math.log10(beta["r_max_b"]) + 2.0
    ) ** 2


ALL_SEARCHERS = [
    GridSearch(),
    RandomSearch(num_samples=60),
    BayesianOptimizationSearch(num_initial=6, num_iterations=12),
]


@pytest.mark.parametrize("searcher", ALL_SEARCHERS, ids=lambda s: s.name)
class TestCommonContract:
    def test_finds_near_optimum_1d(self, searcher):
        result = searcher.search(bowl, ["r_max"], rng=0)
        assert math.log10(result.best_beta["r_max"]) == pytest.approx(
            -3.0, abs=1.0
        )

    def test_history_and_counters(self, searcher):
        result = searcher.search(bowl, ["r_max"], rng=1)
        assert result.evaluations == len(result.history)
        assert result.elapsed_seconds > 0
        values = [v for _, v in result.history]
        assert result.best_value == min(values)

    def test_betas_in_unit_interval(self, searcher):
        result = searcher.search(bowl2, ["r_max", "r_max_b"], rng=2)
        for beta, _ in result.history:
            assert all(0 < v < 1 for v in beta.values())

    def test_requires_params(self, searcher):
        with pytest.raises(ValueError):
            searcher.search(bowl, [], rng=3)


class TestGridSearch:
    def test_exhaustive_evaluation_count(self):
        searcher = GridSearch(grid=[0.1, 0.01, 0.001])
        result = searcher.search(bowl2, ["r_max", "r_max_b"], rng=0)
        assert result.evaluations == 9

    def test_custom_grid_validation(self):
        with pytest.raises(ValueError):
            GridSearch(grid=[])
        with pytest.raises(ValueError):
            GridSearch(grid=[2.0])

    def test_finds_exact_grid_optimum(self):
        searcher = GridSearch(grid=[1e-4, 1e-3, 1e-2])
        result = searcher.search(bowl, ["r_max"], rng=0)
        assert result.best_beta["r_max"] == 1e-3


class TestRandomSearch:
    def test_sample_count(self):
        result = RandomSearch(num_samples=17).search(bowl, ["r_max"], rng=0)
        assert result.evaluations == 17

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            RandomSearch(num_samples=0)

    def test_deterministic_given_seed(self):
        a = RandomSearch(25).search(bowl, ["r_max"], rng=7)
        b = RandomSearch(25).search(bowl, ["r_max"], rng=7)
        assert a.best_beta == b.best_beta


class TestBayesianOptimization:
    def test_evaluation_budget(self):
        searcher = BayesianOptimizationSearch(num_initial=4, num_iterations=6)
        result = searcher.search(bowl, ["r_max"], rng=0)
        assert result.evaluations == 10

    def test_beats_random_on_same_budget(self):
        """On a smooth objective, GP guidance should (statistically)
        find a better optimum than random sampling with equal budget."""
        budget = 20
        bo_values = []
        rs_values = []
        for seed in range(5):
            bo = BayesianOptimizationSearch(
                num_initial=5, num_iterations=budget - 5
            ).search(bowl, ["r_max"], rng=seed)
            rs = RandomSearch(num_samples=budget).search(
                bowl, ["r_max"], rng=seed
            )
            bo_values.append(bo.best_value)
            rs_values.append(rs.best_value)
        assert np.mean(bo_values) <= np.mean(rs_values) + 0.05

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BayesianOptimizationSearch(num_initial=0)
        with pytest.raises(ValueError):
            BayesianOptimizationSearch(num_iterations=-1)

    def test_handles_constant_objective(self):
        result = BayesianOptimizationSearch(
            num_initial=3, num_iterations=3
        ).search(lambda beta: 1.0, ["r_max"], rng=1)
        assert result.best_value == 1.0
