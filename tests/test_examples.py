"""Smoke tests: every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "related_pins.py",
        "gaming_incentive.py",
        "adaptive_reconfiguration.py",
        "anomaly_tracking.py",
    ],
)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    marker = "ALARM" if script == "anomaly_tracking.py" else "response"
    assert marker in proc.stdout
