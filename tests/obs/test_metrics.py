"""Tests for the observability registry (counters / histograms)."""

import pytest

from repro.obs import Histogram, MetricsRegistry, get_metrics


class TestCounter:
    def test_inc_and_reset(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_same_object_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")


class TestHistogram:
    def test_streaming_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("service.query")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.mean() == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_percentile_scale_and_validation(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(100) == 100.0
        with pytest.raises(ValueError):
            hist.percentile(0.99)  # fraction misuse
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_empty_percentile_is_zero(self):
        assert MetricsRegistry().histogram("h").percentile(99) == 0.0

    def test_bounded_samples_keep_exact_totals(self):
        hist = Histogram("h", max_samples=10)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.total == pytest.approx(sum(range(100)))


class TestRegistry:
    def test_time_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("op"):
            pass
        hist = registry.histogram("op")
        assert hist.count == 1
        assert hist.total >= 0.0

    def test_reset_keeps_registered_objects_live(self):
        """Components hold direct Counter references; reset must zero
        them in place, not replace them."""
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc(3)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.counter("x").value == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1.0
        assert snap["histograms"]["h"]["mean"] == pytest.approx(1.5)

    def test_global_registry_is_shared(self):
        assert get_metrics() is get_metrics()
