"""Tests for workload generation and dynamic patterns."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, EdgeUpdate, barabasi_albert_graph
from repro.queueing import (
    Request,
    Workload,
    WorkloadSegment,
    dynamic_pattern_segments,
    generate_segmented_workload,
    generate_workload,
)
from repro.queueing.workload import QUERY, UPDATE


@pytest.fixture
def graph():
    return barabasi_albert_graph(50, attach=2, seed=1)


class TestRequest:
    def test_query_requires_source(self):
        with pytest.raises(ValueError):
            Request(0.0, QUERY)

    def test_update_requires_edge(self):
        with pytest.raises(ValueError):
            Request(0.0, UPDATE)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Request(0.0, "compact", source=1)

    def test_valid_requests(self):
        q = Request(1.0, QUERY, source=3)
        u = Request(2.0, UPDATE, update=EdgeUpdate(0, 1))
        assert q.source == 3
        assert u.update.u == 0


class TestGenerateWorkload:
    def test_rates_roughly_match(self, graph):
        w = generate_workload(graph, 40.0, 20.0, 100.0, rng=0)
        lq, lu = w.empirical_rates()
        assert lq == pytest.approx(40.0, rel=0.15)
        assert lu == pytest.approx(20.0, rel=0.2)

    def test_sorted_by_arrival(self, graph):
        w = generate_workload(graph, 10.0, 10.0, 20.0, rng=1)
        arrivals = [r.arrival for r in w]
        assert arrivals == sorted(arrivals)

    def test_sources_and_endpoints_valid(self, graph):
        nodes = set(graph.nodes())
        w = generate_workload(graph, 20.0, 20.0, 10.0, rng=2)
        for r in w:
            if r.kind == QUERY:
                assert r.source in nodes
            else:
                assert r.update.u in nodes and r.update.v in nodes
                assert r.update.u != r.update.v

    def test_pure_query_stream(self, graph):
        w = generate_workload(graph, 10.0, 0.0, 10.0, rng=3)
        assert w.num_updates == 0
        assert w.num_queries > 0

    def test_pure_update_stream(self, graph):
        w = generate_workload(graph, 0.0, 10.0, 10.0, rng=4)
        assert w.num_queries == 0
        assert w.num_updates > 0

    def test_negative_rate_rejected(self, graph):
        with pytest.raises(ValueError):
            generate_workload(graph, -1.0, 1.0, 10.0)

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(DynamicGraph(num_nodes=1), 1.0, 1.0, 10.0)

    def test_explicit_times_override(self, graph):
        w = generate_workload(
            graph,
            1.0,
            1.0,
            10.0,
            rng=5,
            query_times=np.array([1.0, 2.0]),
            update_times=np.array([1.5]),
        )
        assert w.num_queries == 2
        assert w.num_updates == 1

    def test_deterministic_given_seed(self, graph):
        a = generate_workload(graph, 5.0, 5.0, 20.0, rng=42)
        b = generate_workload(graph, 5.0, 5.0, 20.0, rng=42)
        assert [(r.arrival, r.kind) for r in a] == [
            (r.arrival, r.kind) for r in b
        ]

    def test_workload_sorts_unsorted_input(self):
        requests = [
            Request(2.0, QUERY, source=0),
            Request(1.0, QUERY, source=1),
        ]
        w = Workload(requests, 3.0, 1.0, 0.0)
        assert [r.arrival for r in w] == [1.0, 2.0]


class TestDynamicPatterns:
    @pytest.mark.parametrize(
        "pattern",
        [
            "query-inclined",
            "query-declined",
            "update-inclined",
            "update-declined",
            "balanced",
        ],
    )
    def test_segments_cover_window(self, pattern):
        segments = dynamic_pattern_segments(pattern, 100.0, rng=0)
        assert sum(s.duration for s in segments) == pytest.approx(100.0)
        assert all(s.lambda_q > 0 and s.lambda_u > 0 for s in segments)

    def test_query_inclined_ramps_up(self):
        segments = dynamic_pattern_segments("query-inclined", 200.0, rng=1)
        assert segments[0].lambda_q == pytest.approx(10.0)
        assert segments[-1].lambda_q == pytest.approx(30.0)
        assert all(s.lambda_u == 5.0 for s in segments)

    def test_update_declined_ramps_down(self):
        segments = dynamic_pattern_segments("update-declined", 200.0, rng=2)
        assert segments[0].lambda_u == pytest.approx(30.0)
        assert segments[-1].lambda_u == pytest.approx(10.0)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            dynamic_pattern_segments("chaotic", 10.0)

    def test_segmented_workload(self, graph):
        segments = [
            WorkloadSegment(10.0, 20.0, 1.0),
            WorkloadSegment(10.0, 1.0, 20.0),
        ]
        w = generate_segmented_workload(graph, segments, rng=3)
        assert w.t_end == pytest.approx(20.0)
        first_half = [r for r in w if r.arrival < 10.0]
        second_half = [r for r in w if r.arrival >= 10.0]
        q1 = sum(1 for r in first_half if r.kind == QUERY)
        q2 = sum(1 for r in second_half if r.kind == QUERY)
        assert q1 > q2  # rates flipped between segments

    def test_segmented_workload_empty(self, graph):
        with pytest.raises(ValueError):
            generate_segmented_workload(graph, [])
