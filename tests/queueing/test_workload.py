"""Tests for workload generation and dynamic patterns."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, EdgeUpdate, barabasi_albert_graph
from repro.queueing import (
    Request,
    Workload,
    WorkloadSegment,
    dynamic_pattern_segments,
    generate_segmented_workload,
    generate_workload,
)
from repro.queueing.workload import QUERY, UPDATE


@pytest.fixture
def graph():
    return barabasi_albert_graph(50, attach=2, seed=1)


class TestRequest:
    def test_query_requires_source(self):
        with pytest.raises(ValueError):
            Request(0.0, QUERY)

    def test_update_requires_edge(self):
        with pytest.raises(ValueError):
            Request(0.0, UPDATE)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Request(0.0, "compact", source=1)

    def test_valid_requests(self):
        q = Request(1.0, QUERY, source=3)
        u = Request(2.0, UPDATE, update=EdgeUpdate(0, 1))
        assert q.source == 3
        assert u.update.u == 0


class TestGenerateWorkload:
    def test_rates_roughly_match(self, graph):
        w = generate_workload(graph, 40.0, 20.0, 100.0, rng=0)
        lq, lu = w.empirical_rates()
        assert lq == pytest.approx(40.0, rel=0.15)
        assert lu == pytest.approx(20.0, rel=0.2)

    def test_sorted_by_arrival(self, graph):
        w = generate_workload(graph, 10.0, 10.0, 20.0, rng=1)
        arrivals = [r.arrival for r in w]
        assert arrivals == sorted(arrivals)

    def test_sources_and_endpoints_valid(self, graph):
        nodes = set(graph.nodes())
        w = generate_workload(graph, 20.0, 20.0, 10.0, rng=2)
        for r in w:
            if r.kind == QUERY:
                assert r.source in nodes
            else:
                assert r.update.u in nodes and r.update.v in nodes
                assert r.update.u != r.update.v

    def test_pure_query_stream(self, graph):
        w = generate_workload(graph, 10.0, 0.0, 10.0, rng=3)
        assert w.num_updates == 0
        assert w.num_queries > 0

    def test_pure_update_stream(self, graph):
        w = generate_workload(graph, 0.0, 10.0, 10.0, rng=4)
        assert w.num_queries == 0
        assert w.num_updates > 0

    def test_negative_rate_rejected(self, graph):
        with pytest.raises(ValueError):
            generate_workload(graph, -1.0, 1.0, 10.0)

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(DynamicGraph(num_nodes=1), 1.0, 1.0, 10.0)

    def test_explicit_times_override(self, graph):
        w = generate_workload(
            graph,
            1.0,
            1.0,
            10.0,
            rng=5,
            query_times=np.array([1.0, 2.0]),
            update_times=np.array([1.5]),
        )
        assert w.num_queries == 2
        assert w.num_updates == 1

    def test_deterministic_given_seed(self, graph):
        a = generate_workload(graph, 5.0, 5.0, 20.0, rng=42)
        b = generate_workload(graph, 5.0, 5.0, 20.0, rng=42)
        assert [(r.arrival, r.kind) for r in a] == [
            (r.arrival, r.kind) for r in b
        ]

    def test_workload_sorts_unsorted_input(self):
        requests = [
            Request(2.0, QUERY, source=0),
            Request(1.0, QUERY, source=1),
        ]
        w = Workload(requests, 3.0, 1.0, 0.0)
        assert [r.arrival for r in w] == [1.0, 2.0]


class TestDynamicPatterns:
    @pytest.mark.parametrize(
        "pattern",
        [
            "query-inclined",
            "query-declined",
            "update-inclined",
            "update-declined",
            "balanced",
        ],
    )
    def test_segments_cover_window(self, pattern):
        segments = dynamic_pattern_segments(pattern, 100.0, rng=0)
        assert sum(s.duration for s in segments) == pytest.approx(100.0)
        assert all(s.lambda_q > 0 and s.lambda_u > 0 for s in segments)

    def test_query_inclined_ramps_up(self):
        segments = dynamic_pattern_segments("query-inclined", 200.0, rng=1)
        assert segments[0].lambda_q == pytest.approx(10.0)
        assert segments[-1].lambda_q == pytest.approx(30.0)
        assert all(s.lambda_u == 5.0 for s in segments)

    def test_update_declined_ramps_down(self):
        segments = dynamic_pattern_segments("update-declined", 200.0, rng=2)
        assert segments[0].lambda_u == pytest.approx(30.0)
        assert segments[-1].lambda_u == pytest.approx(10.0)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            dynamic_pattern_segments("chaotic", 10.0)

    def test_segmented_workload(self, graph):
        segments = [
            WorkloadSegment(10.0, 20.0, 1.0),
            WorkloadSegment(10.0, 1.0, 20.0),
        ]
        w = generate_segmented_workload(graph, segments, rng=3)
        assert w.t_end == pytest.approx(20.0)
        first_half = [r for r in w if r.arrival < 10.0]
        second_half = [r for r in w if r.arrival >= 10.0]
        q1 = sum(1 for r in first_half if r.kind == QUERY)
        q2 = sum(1 for r in second_half if r.kind == QUERY)
        assert q1 > q2  # rates flipped between segments

    def test_segmented_workload_empty(self, graph):
        with pytest.raises(ValueError):
            generate_segmented_workload(graph, [])


#: (pattern, starting lambda_q, starting lambda_u) with the default
#: q_range/u_range/fixed arguments of dynamic_pattern_segments
PATTERN_STARTS = [
    ("query-inclined", 10.0, 5.0),
    ("query-declined", 30.0, 5.0),
    ("update-inclined", 5.0, 10.0),
    ("update-declined", 5.0, 30.0),
    ("balanced", 10.0, 10.0),
]


class TestOneSegmentRampRegression:
    """A window shorter than its first phase must run at the pattern's
    *starting* rate (the seed returned the ramp's end rate, so a short
    query-inclined window ran entirely at peak and a query-declined
    window started at its end rate)."""

    @pytest.mark.parametrize("pattern,start_q,start_u", PATTERN_STARTS)
    def test_single_segment_uses_starting_rate(
        self, pattern, start_q, start_u
    ):
        segments = dynamic_pattern_segments(pattern, 0.01, rng=0)
        assert len(segments) == 1  # phase mean is 10 s >> the window
        assert segments[0].lambda_q == pytest.approx(start_q)
        assert segments[0].lambda_u == pytest.approx(start_u)

    @pytest.mark.parametrize("pattern,start_q,start_u", PATTERN_STARTS)
    def test_multi_segment_start_unchanged(self, pattern, start_q, start_u):
        segments = dynamic_pattern_segments(pattern, 300.0, rng=1)
        assert len(segments) > 1
        assert segments[0].lambda_q == pytest.approx(start_q)
        assert segments[0].lambda_u == pytest.approx(start_u)


class TestProcessWithZeroRateRegression:
    """A caller-supplied arrival process must be honored even when the
    matching ``lambda_*`` hint is 0 (the seed gated generation on the
    hint, so TraceArrivals + placeholder rate yielded an empty stream
    with no error)."""

    def test_query_process_with_zero_rate_hint(self, graph):
        from repro.queueing import TraceArrivals

        stamps = [0.5, 1.5, 2.5, 3.5]
        w = generate_workload(
            graph, 0.0, 0.0, 10.0, rng=0,
            query_process=TraceArrivals(stamps),
        )
        assert w.num_queries == len(stamps)
        # metadata records the empirical rate of the generated stream
        assert w.lambda_q == pytest.approx(len(stamps) / 10.0)
        assert w.lambda_u == 0.0

    def test_update_process_with_zero_rate_hint(self, graph):
        from repro.queueing import TraceArrivals

        w = generate_workload(
            graph, 0.0, 0.0, 4.0, rng=0,
            update_process=TraceArrivals([1.0, 2.0]),
        )
        assert w.num_updates == 2
        assert w.lambda_u == pytest.approx(0.5)

    def test_positive_hint_still_recorded_as_configured(self, graph):
        from repro.queueing import UniformArrivals

        w = generate_workload(
            graph, 8.0, 0.0, 20.0, rng=3,
            query_process=UniformArrivals(8.0),
        )
        assert w.lambda_q == 8.0  # configured rate, not empirical
        assert w.num_queries > 0


class TestVectorizedUpdateEndpoints:
    """Bulk endpoint sampling must match the sequential
    ``choice(size=2, replace=False)`` distribution: tails uniform over
    the nodes, heads uniform over the remaining nodes, no self-loops."""

    def test_no_self_loops_and_valid_endpoints(self, graph):
        nodes = set(graph.nodes())
        w = generate_workload(graph, 0.0, 200.0, 20.0, rng=7)
        assert w.num_updates > 1000
        for r in w:
            assert r.update.u in nodes and r.update.v in nodes
            assert r.update.u != r.update.v

    def test_ordered_pair_distribution_uniform(self):
        from repro.queueing.workload import _random_update_endpoints

        rng = np.random.default_rng(11)
        nodes = np.arange(6, dtype=np.int64)
        draws = 30_000
        u, v = _random_update_endpoints(draws, nodes, rng)
        assert not np.any(u == v)
        counts = np.zeros((6, 6), dtype=np.int64)
        np.add.at(counts, (u, v), 1)
        assert np.all(np.diag(counts) == 0)
        # 30 ordered pairs, 1000 expected each (sigma ~ 31): a uniform
        # sampler stays well inside +-15%; the old sequential draw
        # satisfies the same bound, so this is the shared contract
        off_diag = counts[~np.eye(6, dtype=bool)]
        expected = draws / 30.0
        assert np.all(np.abs(off_diag - expected) < 0.15 * expected)
        # chi-square statistic against uniform: df = 29, mean 29,
        # far tail starts ~ 60
        chi2 = float(np.sum((off_diag - expected) ** 2 / expected))
        assert chi2 < 60.0
