"""Tests for the multi-server extension of the FCFS simulator."""

import math

import numpy as np
import pytest

from repro.queueing import FCFSQueueSimulator, PoissonArrivals, Request, Workload
from repro.queueing.workload import QUERY


def queries(arrivals):
    return [Request(float(t), QUERY, source=0) for t in arrivals]


class TestDispatch:
    def test_two_servers_run_in_parallel(self):
        sim = FCFSQueueSimulator(lambda r: 10.0, servers=2, modeled=True)
        result = sim.run(queries([0.0, 0.0]), t_end=20.0)
        starts = sorted(c.start for c in result.completed)
        assert starts == [0.0, 0.0]  # no waiting with 2 servers

    def test_third_request_waits(self):
        sim = FCFSQueueSimulator(lambda r: 10.0, servers=2, modeled=True)
        result = sim.run(queries([0.0, 0.0, 0.0]), t_end=40.0)
        starts = sorted(c.start for c in result.completed)
        assert starts == [0.0, 0.0, 10.0]

    def test_single_server_unchanged(self):
        """servers=1 must replicate the original sequential behaviour."""
        arrivals = [0.0, 1.0, 2.0, 3.0]
        a = FCFSQueueSimulator(lambda r: 2.5).run(
            queries(arrivals), t_end=30.0
        )
        b = FCFSQueueSimulator(lambda r: 2.5, servers=1, modeled=True).run(
            queries(arrivals), t_end=30.0
        )
        assert [c.finish for c in a.completed] == [
            c.finish for c in b.completed
        ]

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            FCFSQueueSimulator(lambda r: 1.0, servers=0)

    def test_fcfs_start_order_preserved(self):
        """Requests start in arrival order even across servers."""
        rng = np.random.default_rng(0)
        arrivals = sorted(rng.uniform(0, 10, size=40))
        services = iter(rng.uniform(0.1, 1.0, size=40))
        sim = FCFSQueueSimulator(lambda r: next(services), servers=3, modeled=True)
        result = sim.run(queries(arrivals), t_end=60.0)
        starts = [c.start for c in result.completed]
        assert starts == sorted(starts)


class TestScaling:
    def test_more_servers_lower_response(self):
        """An overloaded single server is rescued by parallelism."""
        rng = np.random.default_rng(1)
        lam = 10.0
        t_end = 200.0
        times = PoissonArrivals(lam).generate(t_end, rng)
        requests = queries(times)
        service = 0.15  # rho = 1.5 on one server

        def run(k):
            sim = FCFSQueueSimulator(lambda r: service, servers=k, modeled=True)
            return sim.run(
                Workload(list(requests), t_end, lam, 0.0)
            ).mean_query_response_time()

        r1, r2, r4 = run(1), run(2), run(4)
        assert r2 < r1 / 2
        assert r4 < r2

    def test_mmc_sanity(self):
        """M/M/2 at rho=0.375 per server: response close to theory."""
        rng = np.random.default_rng(2)
        lam, mu, c = 7.5, 10.0, 2
        t_end = 4000.0
        times = PoissonArrivals(lam).generate(t_end, rng)
        sim = FCFSQueueSimulator(
            lambda r: float(rng.exponential(1.0 / mu)), servers=c, modeled=True
        )
        measured = sim.run(
            Workload(queries(times), t_end, lam, 0.0)
        ).mean_query_response_time()
        # Erlang-C for M/M/2: W = C(2, a)/(c mu - lam) + 1/mu
        a = lam / mu
        rho = a / c
        erlang_c = (a**c / math.factorial(c) / (1 - rho)) / (
            sum(a**k / math.factorial(k) for k in range(c))
            + a**c / math.factorial(c) / (1 - rho)
        )
        theory = erlang_c / (c * mu - lam) + 1.0 / mu
        assert measured == pytest.approx(theory, rel=0.1)
