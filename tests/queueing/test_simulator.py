"""Tests for the virtual-time FCFS simulator, including the Lindley
invariants (property-based) and an M/M/1 validation against Eq. 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EdgeUpdate
from repro.queueing import (
    FCFSQueueSimulator,
    PoissonArrivals,
    Request,
    Workload,
    expected_response_time,
)
from repro.queueing.workload import QUERY, UPDATE


def make_requests(arrivals, kind=QUERY):
    return [
        Request(float(t), kind, source=0)
        if kind == QUERY
        else Request(float(t), kind, update=EdgeUpdate(0, 1))
        for t in arrivals
    ]


class TestBasics:
    def test_single_request(self):
        sim = FCFSQueueSimulator(lambda r: 2.0)
        result = sim.run(make_requests([1.0]), t_end=10.0)
        (done,) = result.completed
        assert done.start == 1.0
        assert done.finish == 3.0
        assert done.response_time == 2.0
        assert done.waiting_time == 0.0

    def test_queueing_delay(self):
        """Back-to-back arrivals wait for the server."""
        sim = FCFSQueueSimulator(lambda r: 5.0)
        result = sim.run(make_requests([0.0, 1.0, 2.0]), t_end=30.0)
        starts = [c.start for c in result.completed]
        assert starts == [0.0, 5.0, 10.0]
        assert [c.response_time for c in result.completed] == [5.0, 9.0, 13.0]

    def test_idle_gap(self):
        sim = FCFSQueueSimulator(lambda r: 1.0)
        result = sim.run(make_requests([0.0, 100.0]), t_end=200.0)
        assert result.completed[1].start == 100.0
        assert result.completed[1].waiting_time == 0.0

    def test_mixed_kinds_fcfs_order(self):
        requests = [
            Request(0.0, UPDATE, update=EdgeUpdate(0, 1)),
            Request(0.5, QUERY, source=3),
        ]
        order = []
        sim = FCFSQueueSimulator(lambda r: order.append(r.kind) or 1.0)
        sim.run(requests, t_end=10.0)
        assert order == [UPDATE, QUERY]

    def test_negative_service_rejected(self):
        sim = FCFSQueueSimulator(lambda r: -1.0)
        with pytest.raises(ValueError):
            sim.run(make_requests([0.0]), t_end=1.0)

    def test_empty_workload(self):
        sim = FCFSQueueSimulator(lambda r: 1.0)
        result = sim.run([], t_end=5.0)
        assert len(result) == 0
        assert result.mean_query_response_time() == 0.0
        assert result.utilization() == 0.0


class TestResultMetrics:
    def _result(self):
        requests = make_requests([0.0, 0.0, 0.0]) + make_requests(
            [0.0], kind=UPDATE
        )
        sim = FCFSQueueSimulator(lambda r: 1.0 if r.kind == QUERY else 2.0)
        return sim.run(requests, t_end=10.0)

    def test_kind_filter(self):
        result = self._result()
        assert len(result.of_kind(QUERY)) == 3
        assert len(result.of_kind(UPDATE)) == 1

    def test_mean_service_per_kind(self):
        result = self._result()
        assert result.mean_service_time(QUERY) == 1.0
        assert result.mean_service_time(UPDATE) == 2.0

    def test_percentiles_monotone(self):
        result = self._result()
        p50 = result.percentile_query_response_time(50)
        p95 = result.percentile_query_response_time(95)
        assert p95 >= p50

    def test_empirical_load(self):
        result = self._result()
        assert result.empirical_load() == pytest.approx((3 * 1 + 2) / 10.0)

    def test_utilization_bounded(self):
        result = self._result()
        assert 0.0 < result.utilization() <= 1.0

    def test_percentile_rejects_fractional_quantile(self):
        """Regression: 0.99 (a fraction) used to be passed straight to
        np.percentile, silently returning ~the minimum instead of p99."""
        result = self._result()
        with pytest.raises(ValueError, match="fraction"):
            result.percentile_query_response_time(0.99)

    def test_percentile_rejects_out_of_range(self):
        result = self._result()
        with pytest.raises(ValueError):
            result.percentile_query_response_time(101.0)
        with pytest.raises(ValueError):
            result.percentile_query_response_time(-5.0)

    def test_percentile_accepts_bounds(self):
        result = self._result()
        assert result.percentile_query_response_time(0) >= 0.0
        assert result.percentile_query_response_time(100) >= 0.0


class TestHorizonAccounting:
    def test_raw_iterable_horizon_covers_service(self):
        """Regression: with no t_end the horizon used to stop at the
        last *arrival*, so an underloaded system could report rho > 1
        (e.g. one request arriving at t=0 with 1s of service gave
        busy/horizon = 1/0)."""
        sim = FCFSQueueSimulator(lambda r: 1.0)
        result = sim.run(make_requests([0.0, 0.5]))
        # arrivals end at 0.5 but service runs until t=2
        assert result.t_end == pytest.approx(2.0)
        assert result.utilization() <= 1.0
        assert result.empirical_load() <= 1.0

    def test_load_and_utilization_share_denominator(self):
        sim = FCFSQueueSimulator(lambda r: 3.0)
        result = sim.run(make_requests([0.0, 1.0, 2.0]))
        assert result.empirical_load() == pytest.approx(result.utilization())

    def test_busy_server_full_utilization(self):
        """Back-to-back work: utilization exactly 1 once the horizon
        spans arrivals and service."""
        sim = FCFSQueueSimulator(lambda r: 2.0)
        result = sim.run(make_requests([0.0, 0.0, 0.0]))
        assert result.utilization() == pytest.approx(1.0)

    def test_explicit_t_end_still_respected(self):
        sim = FCFSQueueSimulator(lambda r: 1.0)
        result = sim.run(make_requests([0.0]), t_end=10.0)
        assert result.t_end == 10.0
        assert result.empirical_load() == pytest.approx(0.1)

    def test_overrun_extends_horizon_for_both_metrics(self):
        """Service past the window extends the shared denominator."""
        sim = FCFSQueueSimulator(lambda r: 8.0)
        result = sim.run(make_requests([0.0]), t_end=2.0)
        assert result.horizon == pytest.approx(8.0)
        assert result.utilization() == pytest.approx(1.0)
        assert result.empirical_load() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Property: Lindley recursion invariants hold for any workload.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    arrivals=st.lists(st.floats(0, 100), min_size=1, max_size=40),
    services=st.lists(st.floats(0, 10), min_size=40, max_size=40),
)
def test_lindley_invariants(arrivals, services):
    requests = make_requests(sorted(arrivals))
    queue = iter(services)
    sim = FCFSQueueSimulator(lambda r: next(queue))
    result = sim.run(requests, t_end=200.0)
    previous_finish = 0.0
    for done in result.completed:
        # no service before arrival, no overlap, FCFS completion order
        assert done.start >= done.arrival
        assert done.start >= previous_finish
        assert done.finish == pytest.approx(done.start + done.service)
        assert done.response_time >= done.service - 1e-9
        previous_finish = done.finish


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 50), min_size=2, max_size=30))
def test_unsorted_iterable_is_sorted(arrivals):
    sim = FCFSQueueSimulator(lambda r: 0.1)
    result = sim.run(make_requests(arrivals))
    processed = [c.arrival for c in result.completed]
    assert processed == sorted(processed)


# ----------------------------------------------------------------------
# Statistical validation: simulated M/M/1 matches Eq. 2.
# ----------------------------------------------------------------------
def test_simulator_matches_eq2_for_mm1():
    rng = np.random.default_rng(7)
    lam, mu = 5.0, 10.0
    t_end = 4000.0
    times = PoissonArrivals(lam).generate(t_end, rng)
    requests = make_requests(times)
    sim = FCFSQueueSimulator(lambda r: float(rng.exponential(1.0 / mu)))
    result = sim.run(Workload(requests, t_end, lam, 0.0))
    theory = expected_response_time(lam, 0.0, 1.0 / mu, 0.0, cv_q=1.0)
    assert result.mean_query_response_time() == pytest.approx(theory, rel=0.1)


def test_simulator_matches_eq2_for_mixed_stream():
    """Queries + updates with deterministic service (CV = 0)."""
    rng = np.random.default_rng(8)
    lam_q, lam_u = 4.0, 2.0
    t_q, t_u = 0.05, 0.1
    t_end = 5000.0
    q_times = PoissonArrivals(lam_q).generate(t_end, rng)
    u_times = PoissonArrivals(lam_u).generate(t_end, rng)
    requests = make_requests(q_times) + make_requests(u_times, kind=UPDATE)
    requests.sort(key=lambda r: r.arrival)
    sim = FCFSQueueSimulator(lambda r: t_q if r.kind == QUERY else t_u)
    result = sim.run(Workload(requests, t_end, lam_q, lam_u))
    theory = expected_response_time(lam_q, lam_u, t_q, t_u, cv_q=0.0, cv_u=0.0)
    assert result.mean_query_response_time() == pytest.approx(theory, rel=0.15)


def test_unstable_queue_grows_linearly():
    """Lemma 1: response time of the n-th query grows like n (rho-1)/lq."""
    lam = 10.0
    service = 0.2  # rho = 2
    t_end = 200.0
    rng = np.random.default_rng(9)
    times = PoissonArrivals(lam).generate(t_end, rng)
    requests = make_requests(times)
    sim = FCFSQueueSimulator(lambda r: service)
    result = sim.run(Workload(requests, t_end, lam, 0.0))
    n = len(result.completed)
    last = result.completed[-1]
    growth = last.response_time / n
    assert growth == pytest.approx((2.0 - 1.0) / lam, rel=0.15)
