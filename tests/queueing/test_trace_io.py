"""Tests for workload trace persistence."""

import pytest

from repro.graph import barabasi_albert_graph
from repro.queueing import generate_workload
from repro.queueing.trace_io import load_workload_trace, save_workload_trace
from repro.queueing.workload import QUERY, UPDATE


@pytest.fixture
def workload():
    graph = barabasi_albert_graph(40, attach=2, seed=1)
    return generate_workload(graph, 10.0, 5.0, 4.0, rng=2)


class TestRoundTrip:
    def test_requests_preserved(self, workload, tmp_path):
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        loaded = load_workload_trace(path, t_end=workload.t_end)
        assert len(loaded) == len(workload)
        for a, b in zip(workload, loaded):
            assert a.arrival == pytest.approx(b.arrival)
            assert a.kind == b.kind
            if a.kind == QUERY:
                assert a.source == b.source
            else:
                assert (a.update.u, a.update.v) == (b.update.u, b.update.v)

    def test_rates_recomputed(self, workload, tmp_path):
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        loaded = load_workload_trace(path, t_end=workload.t_end)
        lq, lu = loaded.empirical_rates()
        assert lq == pytest.approx(workload.empirical_rates()[0])
        assert lu == pytest.approx(workload.empirical_rates()[1])

    def test_default_t_end_is_last_arrival(self, workload, tmp_path):
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        loaded = load_workload_trace(path)
        assert loaded.t_end == pytest.approx(workload[-1].arrival)


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            load_workload_trace(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,type\n")
        with pytest.raises(ValueError, match="expected header"):
            load_workload_trace(path)

    def test_bad_kind_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b\n1.0,compact,3,\n")
        with pytest.raises(ValueError, match="unknown request kind"):
            load_workload_trace(path)

    def test_negative_timestamp_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b\n-1.0,query,3,\n")
        with pytest.raises(ValueError, match="negative timestamp"):
            load_workload_trace(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b\n1.0,query\n")
        with pytest.raises(ValueError, match="expected 4 columns"):
            load_workload_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b\n1.0,query,3,\n\n2.0,update,1,2\n"
        )
        loaded = load_workload_trace(path)
        assert len(loaded) == 2

    def test_unsorted_trace_sorted_on_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b\n5.0,query,1,\n1.0,query,2,\n"
        )
        loaded = load_workload_trace(path)
        assert [r.arrival for r in loaded] == [1.0, 5.0]


def test_loaded_trace_replays_through_system(workload, tmp_path):
    """A persisted trace drives QuotaSystem identically to the original."""
    from repro.core import QuotaSystem
    from repro.graph import barabasi_albert_graph
    from repro.ppr import Fora, PPRParams

    path = tmp_path / "trace.csv"
    save_workload_trace(workload, path)
    loaded = load_workload_trace(path, t_end=workload.t_end)

    graph = barabasi_albert_graph(40, attach=2, seed=1)
    a = Fora(graph.copy(), PPRParams(walk_cap=300))
    b = Fora(graph.copy(), PPRParams(walk_cap=300))
    a.seed(0)
    b.seed(0)
    ra = QuotaSystem(a).process(workload)
    rb = QuotaSystem(b).process(loaded)
    assert len(ra) == len(rb)
    assert set(a.graph.edges()) == set(b.graph.edges())
