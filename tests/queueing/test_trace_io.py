"""Tests for workload trace persistence."""

import pathlib
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import barabasi_albert_graph
from repro.graph.updates import EdgeUpdate
from repro.queueing import generate_workload
from repro.queueing.trace_io import load_workload_trace, save_workload_trace
from repro.queueing.workload import QUERY, UPDATE, Request, Workload


@pytest.fixture
def workload():
    graph = barabasi_albert_graph(40, attach=2, seed=1)
    return generate_workload(graph, 10.0, 5.0, 4.0, rng=2)


class TestRoundTrip:
    def test_requests_preserved(self, workload, tmp_path):
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        loaded = load_workload_trace(path, t_end=workload.t_end)
        assert len(loaded) == len(workload)
        for a, b in zip(workload, loaded):
            assert a.arrival == pytest.approx(b.arrival)
            assert a.kind == b.kind
            if a.kind == QUERY:
                assert a.source == b.source
            else:
                assert (a.update.u, a.update.v) == (b.update.u, b.update.v)

    def test_rates_recomputed(self, workload, tmp_path):
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        loaded = load_workload_trace(path, t_end=workload.t_end)
        lq, lu = loaded.empirical_rates()
        assert lq == pytest.approx(workload.empirical_rates()[0])
        assert lu == pytest.approx(workload.empirical_rates()[1])

    def test_default_t_end_is_last_arrival(self, workload, tmp_path):
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        loaded = load_workload_trace(path)
        assert loaded.t_end == pytest.approx(workload[-1].arrival)


class TestUpdateKindColumn:
    def test_update_kinds_round_trip(self, tmp_path):
        requests = [
            Request(0.5, UPDATE, update=EdgeUpdate(1, 2, "insert")),
            Request(1.0, UPDATE, update=EdgeUpdate(1, 2, "delete")),
            Request(1.5, UPDATE, update=EdgeUpdate(3, 4, "toggle")),
            Request(2.0, QUERY, source=7),
        ]
        workload = Workload(requests, 3.0, 1.0 / 3.0, 1.0)
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        loaded = load_workload_trace(path, t_end=3.0)
        kinds = [r.update.kind for r in loaded if r.kind == UPDATE]
        assert kinds == ["insert", "delete", "toggle"]

    def test_header_has_update_kind_column(self, workload, tmp_path):
        path = tmp_path / "trace.csv"
        save_workload_trace(workload, path)
        header = path.read_text().splitlines()[0]
        assert header == "timestamp,kind,a,b,update_kind"

    def test_legacy_four_column_trace_loads_as_toggle(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b\n1.0,query,3,\n2.0,update,1,2\n"
        )
        loaded = load_workload_trace(path)
        updates = [r for r in loaded if r.kind == UPDATE]
        assert len(loaded) == 2
        assert updates[0].update.kind == "toggle"

    def test_blank_update_kind_means_toggle(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b,update_kind\n1.0,update,1,2,\n"
        )
        loaded = load_workload_trace(path)
        assert loaded[0].update.kind == "toggle"

    def test_unknown_update_kind_rejected_with_location(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b,update_kind\n1.0,update,1,2,upsert\n"
        )
        with pytest.raises(ValueError, match=r"trace\.csv:2.*upsert"):
            load_workload_trace(path)

    def test_query_row_with_update_kind_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b,update_kind\n1.0,query,3,,toggle\n"
        )
        with pytest.raises(ValueError, match="update_kind empty"):
            load_workload_trace(path)


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            load_workload_trace(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,type\n")
        with pytest.raises(ValueError, match="expected header"):
            load_workload_trace(path)

    def test_bad_kind_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b\n1.0,compact,3,\n")
        with pytest.raises(ValueError, match="unknown request kind"):
            load_workload_trace(path)

    def test_negative_timestamp_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b\n-1.0,query,3,\n")
        with pytest.raises(ValueError, match="negative timestamp"):
            load_workload_trace(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b\n1.0,query\n")
        with pytest.raises(ValueError, match="expected 4 columns"):
            load_workload_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b\n1.0,query,3,\n\n2.0,update,1,2\n"
        )
        loaded = load_workload_trace(path)
        assert len(loaded) == 2

    def test_unsorted_trace_sorted_on_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b\n5.0,query,1,\n1.0,query,2,\n"
        )
        loaded = load_workload_trace(path)
        assert [r.arrival for r in loaded] == [1.0, 5.0]

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_non_finite_timestamp_rejected_with_location(self, tmp_path, bad):
        path = tmp_path / "trace.csv"
        path.write_text(
            f"timestamp,kind,a,b,update_kind\n1.0,query,3,,\n{bad},query,4,,\n"
        )
        with pytest.raises(ValueError, match=r"trace\.csv:3.*non-finite"):
            load_workload_trace(path)

    def test_unparseable_timestamp_rejected_with_location(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b,update_kind\nsoon,query,3,,\n")
        with pytest.raises(ValueError, match=r"trace\.csv:2.*bad timestamp"):
            load_workload_trace(path)

    def test_extra_columns_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "timestamp,kind,a,b,update_kind\n1.0,query,3,,,surprise\n"
        )
        with pytest.raises(ValueError, match="expected 5 columns, got 6"):
            load_workload_trace(path)

    def test_extra_columns_rejected_legacy(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp,kind,a,b\n1.0,query,3,,extra\n")
        with pytest.raises(ValueError, match="expected 4 columns, got 5"):
            load_workload_trace(path)


# --- property tests ----------------------------------------------------

_ts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_node = st.integers(min_value=0, max_value=10_000)


@st.composite
def _requests(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    out = []
    for _ in range(n):
        arrival = draw(_ts)
        if draw(st.booleans()):
            out.append(Request(arrival, QUERY, source=draw(_node)))
        else:
            kind = draw(st.sampled_from(["toggle", "insert", "delete"]))
            out.append(
                Request(
                    arrival,
                    UPDATE,
                    update=EdgeUpdate(draw(_node), draw(_node), kind),
                )
            )
    return sorted(out, key=lambda r: r.arrival)


class TestRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(requests=_requests())
    def test_round_trip_preserves_everything(self, requests):
        """Arrival order, request kinds, payloads, and update kinds all
        survive save -> load exactly (timestamps via repr round-trip)."""
        workload = Workload(requests, 1e6, 0.0, 0.0)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "trace.csv"
            save_workload_trace(workload, path)
            loaded = load_workload_trace(path, t_end=1e6)
        assert len(loaded) == len(requests)
        for a, b in zip(requests, loaded):
            assert a.arrival == b.arrival  # repr() is exact for floats
            assert a.kind == b.kind
            if a.kind == QUERY:
                assert a.source == b.source
            else:
                assert a.update == b.update  # u, v, and kind

    @settings(max_examples=50, deadline=None)
    @given(requests=_requests())
    def test_loaded_arrivals_sorted(self, requests):
        workload = Workload(requests, 1e6, 0.0, 0.0)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "trace.csv"
            save_workload_trace(workload, path)
            loaded = load_workload_trace(path, t_end=1e6)
        arrivals = [r.arrival for r in loaded]
        assert arrivals == sorted(arrivals)

    @settings(max_examples=25, deadline=None)
    @given(
        bad=st.sampled_from(["nan", "inf", "-inf"]),
        position=st.integers(min_value=0, max_value=5),
        requests=_requests(),
    )
    def test_injected_non_finite_timestamp_always_caught(
        self, bad, position, requests
    ):
        """Splicing a non-finite timestamp anywhere in an otherwise
        valid trace raises and names the poisoned line."""
        workload = Workload(requests, 1e6, 0.0, 0.0)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "trace.csv"
            save_workload_trace(workload, path)
            lines = path.read_text().splitlines()
            row = min(1 + position, len(lines))  # after the header
            lines.insert(row, f"{bad},query,1,,")
            path.write_text("\n".join(lines) + "\n")
            with pytest.raises(ValueError, match=rf"trace\.csv:{row + 1}:"):
                load_workload_trace(path)


def test_loaded_trace_replays_through_system(workload, tmp_path):
    """A persisted trace drives QuotaSystem identically to the original."""
    from repro.core import QuotaSystem
    from repro.graph import barabasi_albert_graph
    from repro.ppr import Fora, PPRParams

    path = tmp_path / "trace.csv"
    save_workload_trace(workload, path)
    loaded = load_workload_trace(path, t_end=workload.t_end)

    graph = barabasi_albert_graph(40, attach=2, seed=1)
    a = Fora(graph.copy(), PPRParams(walk_cap=300))
    b = Fora(graph.copy(), PPRParams(walk_cap=300))
    a.seed(0)
    b.seed(0)
    ra = QuotaSystem(a).process(workload)
    rb = QuotaSystem(b).process(loaded)
    assert len(ra) == len(rb)
    assert set(a.graph.edges()) == set(b.graph.edges())
