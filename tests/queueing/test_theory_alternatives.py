"""Tests for the alternative response-time estimates (M/M/1, Kingman)."""

import math

import numpy as np
import pytest

from repro.queueing import (
    FCFSQueueSimulator,
    PoissonArrivals,
    Request,
    Workload,
    expected_response_time,
    heavy_traffic_response_time,
    mm1_response_time,
)
from repro.queueing.workload import QUERY


class TestMM1Estimate:
    def test_pure_query_stream_matches_classic(self):
        lam, mu = 4.0, 10.0
        got = mm1_response_time(lam, 0.0, 1.0 / mu, 0.0)
        assert got == pytest.approx(1.0 / (mu - lam))

    def test_infinite_when_unstable(self):
        assert mm1_response_time(10.0, 10.0, 0.1, 0.1) == math.inf

    def test_zero_rate_returns_service(self):
        assert mm1_response_time(0.0, 0.0, 0.25, 0.1) == 0.25

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            mm1_response_time(1.0, 1.0, -0.1, 0.1)

    def test_agrees_with_eq2_for_exponential_queries(self):
        """For a pure M/M/1 stream the two estimates coincide."""
        lam, mu = 5.0, 12.0
        a = mm1_response_time(lam, 0.0, 1.0 / mu, 0.0)
        b = expected_response_time(lam, 0.0, 1.0 / mu, 0.0, cv_q=1.0)
        assert a == pytest.approx(b)


class TestHeavyTrafficEstimate:
    def test_exact_for_mm1(self):
        """Kingman is exact for M/M/1 (C_a = C_s = 1)."""
        lam, mu = 6.0, 10.0
        got = heavy_traffic_response_time(lam, 0.0, 1.0 / mu, 0.0, cv_q=1.0)
        assert got == pytest.approx(1.0 / (mu - lam))

    def test_deterministic_service_halves_waiting(self):
        """M/D/1 waiting is half of M/M/1 waiting."""
        lam, mu = 6.0, 10.0
        t = 1.0 / mu
        md1 = heavy_traffic_response_time(lam, 0.0, t, 0.0, cv_q=0.0)
        mm1 = heavy_traffic_response_time(lam, 0.0, t, 0.0, cv_q=1.0)
        waiting_md1 = md1 - t
        waiting_mm1 = mm1 - t
        assert waiting_md1 == pytest.approx(waiting_mm1 / 2.0, rel=0.01)

    def test_infinite_when_unstable(self):
        assert heavy_traffic_response_time(10.0, 10.0, 0.1, 0.1) == math.inf

    def test_arrival_cv_scales_waiting(self):
        smooth = heavy_traffic_response_time(
            5.0, 0.0, 0.1, 0.0, cv_arrival=0.0
        )
        bursty = heavy_traffic_response_time(
            5.0, 0.0, 0.1, 0.0, cv_arrival=2.0
        )
        assert bursty > smooth

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            heavy_traffic_response_time(1.0, 0.0, -0.1, 0.0)


def test_all_estimates_agree_with_simulation():
    """All three estimates should land near a simulated M/M/1 queue."""
    rng = np.random.default_rng(3)
    lam, mu = 5.0, 10.0
    t_end = 3000.0
    times = PoissonArrivals(lam).generate(t_end, rng)
    requests = [Request(float(t), QUERY, source=0) for t in times]
    sim = FCFSQueueSimulator(lambda r: float(rng.exponential(1.0 / mu)))
    measured = sim.run(
        Workload(requests, t_end, lam, 0.0)
    ).mean_query_response_time()
    for estimate in (
        expected_response_time(lam, 0.0, 1.0 / mu, 0.0),
        mm1_response_time(lam, 0.0, 1.0 / mu, 0.0),
        heavy_traffic_response_time(lam, 0.0, 1.0 / mu, 0.0),
    ):
        assert measured == pytest.approx(estimate, rel=0.15)


class TestControllerResponseModels:
    def _controller(self, model_name):
        from repro.core import ForaCostModel, QuotaController

        model = ForaCostModel(
            1000, 5000,
            taus={"Forward Push": 1e-5, "Random Walk": 1e-3,
                  "Graph Update": 1e-4},
        )
        return QuotaController(model, response_model=model_name)

    @pytest.mark.parametrize("name", ["pk", "mm1", "heavy-traffic"])
    def test_each_model_configures(self, name):
        decision = self._controller(name).configure(5.0, 5.0)
        assert 0 < decision.beta["r_max"] < 1
        assert decision.regime == "stable"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="response_model"):
            self._controller("erlang-c")

    def test_models_agree_at_zero_load(self):
        """All estimates reduce to t_q as rates -> 0, so the chosen
        beta converges to the same query-time optimum."""
        betas = [
            self._controller(name).configure(1e-6, 0.0).beta["r_max"]
            for name in ("pk", "mm1", "heavy-traffic")
        ]
        assert max(betas) / min(betas) < 1.1
