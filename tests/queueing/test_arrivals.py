"""Tests for arrival-time processes."""

import numpy as np
import pytest

from repro.queueing import (
    GammaArrivals,
    GeometricArrivals,
    NormalArrivals,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
    wikipedia_like_trace,
)

ALL_PROCESSES = [
    PoissonArrivals,
    UniformArrivals,
    GeometricArrivals,
    NormalArrivals,
    GammaArrivals,
]


@pytest.mark.parametrize("cls", ALL_PROCESSES)
class TestCommonContract:
    def test_mean_rate_is_respected(self, cls):
        rng = np.random.default_rng(0)
        process = cls(rate=50.0)
        times = process.generate(200.0, rng)
        observed = times.size / 200.0
        assert observed == pytest.approx(50.0, rel=0.1)

    def test_sorted_within_window(self, cls):
        rng = np.random.default_rng(1)
        times = cls(rate=20.0).generate(10.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.size == 0 or (times[0] >= 0 and times[-1] < 10.0)

    def test_zero_window(self, cls):
        rng = np.random.default_rng(2)
        assert cls(rate=5.0).generate(0.0, rng).size == 0

    def test_invalid_rate(self, cls):
        with pytest.raises(ValueError):
            cls(rate=0.0)

    def test_deterministic_given_seed(self, cls):
        a = cls(rate=10.0).generate(20.0, np.random.default_rng(3))
        b = cls(rate=10.0).generate(20.0, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestDistributionShapes:
    def test_poisson_cv_close_to_one(self):
        rng = np.random.default_rng(4)
        gaps = PoissonArrivals(10.0).inter_arrivals(50_000, rng)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.05)

    def test_uniform_cv(self):
        rng = np.random.default_rng(5)
        gaps = UniformArrivals(10.0).inter_arrivals(50_000, rng)
        assert gaps.std() / gaps.mean() == pytest.approx(1 / 3**0.5, abs=0.05)

    def test_uniform_gaps_strictly_positive(self):
        """The open-interval contract: no zero gaps, ever."""
        rng = np.random.default_rng(55)
        gaps = UniformArrivals(10.0).inter_arrivals(200_000, rng)
        assert np.all(gaps > 0.0)
        assert np.all(gaps <= 2.0 / 10.0)

    def test_generate_guards_against_stalled_chunks(self):
        """A process whose gaps are all zero must raise, not spin."""

        class ZeroGaps(PoissonArrivals):
            def inter_arrivals(self, count, rng):
                return np.zeros(count, dtype=np.float64)

        rng = np.random.default_rng(56)
        with pytest.raises(RuntimeError, match="no.*progress|progress"):
            ZeroGaps(rate=5.0).generate(10.0, rng)

    def test_normal_respects_cv(self):
        rng = np.random.default_rng(6)
        gaps = NormalArrivals(10.0, cv=0.3).inter_arrivals(50_000, rng)
        assert gaps.std() / gaps.mean() == pytest.approx(0.3, abs=0.05)
        assert np.all(gaps > 0)

    def test_gamma_cv_from_shape(self):
        rng = np.random.default_rng(7)
        gaps = GammaArrivals(10.0, shape=4.0).inter_arrivals(50_000, rng)
        assert gaps.std() / gaps.mean() == pytest.approx(0.5, abs=0.05)

    def test_geometric_ticks(self):
        rng = np.random.default_rng(8)
        process = GeometricArrivals(10.0, tick=0.01)
        gaps = process.inter_arrivals(10_000, rng)
        assert np.all(np.isclose(gaps / 0.01, np.round(gaps / 0.01)))
        assert gaps.mean() == pytest.approx(0.1, rel=0.05)

    def test_geometric_invalid_tick(self):
        with pytest.raises(ValueError):
            GeometricArrivals(10.0, tick=0.2)  # p = 2 > 1

    def test_normal_invalid_cv(self):
        with pytest.raises(ValueError):
            NormalArrivals(1.0, cv=0.0)

    def test_gamma_invalid_shape(self):
        with pytest.raises(ValueError):
            GammaArrivals(1.0, shape=-1.0)


class TestTraceArrivals:
    def test_replay(self):
        trace = TraceArrivals([0.5, 1.5, 2.5, 9.0])
        rng = np.random.default_rng(9)
        np.testing.assert_array_equal(
            trace.generate(3.0, rng), [0.5, 1.5, 2.5]
        )

    def test_unsorted_input_sorted(self):
        trace = TraceArrivals([3.0, 1.0, 2.0])
        out = trace.generate(10.0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            TraceArrivals([-1.0, 2.0])

    def test_rate_estimate(self):
        trace = TraceArrivals([0.0, 1.0, 2.0, 3.0, 4.0])
        assert trace.rate == pytest.approx(5.0 / 4.0)

    def test_all_zero_trace_rejected(self):
        """Multiple events at t=0 have no span; the old 1e-12 clamp
        produced a ~1e12 rate estimate."""
        with pytest.raises(ValueError, match="span"):
            TraceArrivals([0.0, 0.0, 0.0])

    def test_single_event_at_zero_sane_rate(self):
        trace = TraceArrivals([0.0])
        assert trace.rate == pytest.approx(1.0)

    def test_empty_trace(self):
        trace = TraceArrivals([])
        assert trace.rate > 0.0
        assert trace.generate(5.0, np.random.default_rng(0)).size == 0


class TestWikipediaLikeTrace:
    def test_mean_rate(self):
        rng = np.random.default_rng(10)
        times = wikipedia_like_trace(20.0, 500.0, rng)
        assert times.size / 500.0 == pytest.approx(20.0, rel=0.25)

    def test_burstier_than_poisson(self):
        """Windowed counts must be over-dispersed vs a Poisson process."""
        rng = np.random.default_rng(11)
        times = wikipedia_like_trace(50.0, 400.0, rng, burst_factor=9.0)
        counts, _ = np.histogram(times, bins=np.arange(0, 400, 2.0))
        # Poisson windowed counts have variance == mean; bursts inflate it
        assert counts.var() > 2.0 * counts.mean()

    def test_sorted_and_in_window(self):
        rng = np.random.default_rng(12)
        times = wikipedia_like_trace(5.0, 50.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.size == 0 or times[-1] < 50.0

    def test_invalid_arguments(self):
        rng = np.random.default_rng(13)
        with pytest.raises(ValueError):
            wikipedia_like_trace(0.0, 10.0, rng)
        with pytest.raises(ValueError):
            wikipedia_like_trace(1.0, 0.0, rng)
