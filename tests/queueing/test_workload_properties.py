"""Property-based tests of segmented workload generation.

Hypothesis drives rates, durations, and seeds through the properties
every consumer of :func:`generate_segmented_workload` relies on:
concatenation keeps arrivals sorted and inside the window, each
segment's empirical rate tracks its configured rate, the five paper
patterns ramp between their exact endpoints, and the workload metadata
stays consistent with the segment schedule.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert_graph
from repro.queueing.workload import (
    QUERY,
    UPDATE,
    WorkloadSegment,
    dynamic_pattern_segments,
    generate_segmented_workload,
)

GRAPH = barabasi_albert_graph(60, attach=2, seed=1)

PATTERNS = (
    "query-inclined",
    "query-declined",
    "update-inclined",
    "update-declined",
    "balanced",
)

# exactly zero or a sane positive rate: subnormal lambdas make the
# exponential scale 1/lambda overflow without testing anything new
rates = st.one_of(st.just(0.0), st.floats(min_value=0.01, max_value=40.0))
durations = st.floats(min_value=0.5, max_value=20.0)
segments_strategy = st.lists(
    st.builds(WorkloadSegment, durations, rates, rates),
    min_size=1,
    max_size=6,
).filter(lambda segs: any(s.lambda_q > 0 or s.lambda_u > 0 for s in segs))


def tolerance(expected: float) -> float:
    """~7 sigma for a Poisson count plus slack for tiny expectations."""
    return 7.0 * np.sqrt(expected) + 10.0


class TestConcatenation:
    @given(segments=segments_strategy, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sorted_and_inside_window(self, segments, seed):
        workload = generate_segmented_workload(GRAPH, segments, rng=seed)
        arrivals = [r.arrival for r in workload]
        assert arrivals == sorted(arrivals)
        total = sum(s.duration for s in segments)
        assert workload.t_end == total
        assert all(0.0 <= a < total for a in arrivals)

    @given(segments=segments_strategy, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_window_accounting(self, segments, seed):
        """Every request falls into exactly one segment's window."""
        workload = generate_segmented_workload(GRAPH, segments, rng=seed)
        offsets = np.cumsum([0.0] + [s.duration for s in segments])
        binned = 0
        for lo, hi in zip(offsets, offsets[1:]):
            binned += sum(1 for r in workload if lo <= r.arrival < hi)
        assert binned == len(workload)


class TestPerSegmentRates:
    @given(segments=segments_strategy, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_counts_track_configured_rates(self, segments, seed):
        workload = generate_segmented_workload(GRAPH, segments, rng=seed)
        offset = 0.0
        for segment in segments:
            lo, hi = offset, offset + segment.duration
            queries = sum(
                1 for r in workload if r.kind == QUERY and lo <= r.arrival < hi
            )
            updates = sum(
                1 for r in workload if r.kind == UPDATE and lo <= r.arrival < hi
            )
            expected_q = segment.lambda_q * segment.duration
            expected_u = segment.lambda_u * segment.duration
            assert abs(queries - expected_q) <= tolerance(expected_q)
            assert abs(updates - expected_u) <= tolerance(expected_u)
            if segment.lambda_q == 0:
                assert queries == 0
            if segment.lambda_u == 0:
                assert updates == 0
            offset = hi


class TestRampEndpoints:
    @given(
        pattern=st.sampled_from(PATTERNS),
        total_time=st.floats(min_value=30.0, max_value=120.0),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_endpoints_exact(self, pattern, total_time, seed):
        q_range, u_range = (10.0, 30.0), (10.0, 30.0)
        q_fixed = u_fixed = 5.0
        segments = dynamic_pattern_segments(
            pattern, total_time, rng=seed, mean_phase=5.0
        )
        starts = {
            "query-inclined": (q_range[0], u_fixed),
            "query-declined": (q_range[1], u_fixed),
            "update-inclined": (q_fixed, u_range[0]),
            "update-declined": (q_fixed, u_range[1]),
            "balanced": (q_range[0], u_range[0]),
        }
        mid_q = (q_range[0] + q_range[1]) / 2
        mid_u = (u_range[0] + u_range[1]) / 2
        ends = {
            "query-inclined": (q_range[1], u_fixed),
            "query-declined": (q_range[0], u_fixed),
            "update-inclined": (q_fixed, u_range[1]),
            "update-declined": (q_fixed, u_range[0]),
            "balanced": (mid_q, mid_u),
        }
        first, last = segments[0], segments[-1]
        assert (first.lambda_q, first.lambda_u) == starts[pattern]
        if len(segments) > 1:
            assert (last.lambda_q, last.lambda_u) == ends[pattern]
        else:
            # single phase: no room to ramp — stays at the start rate
            assert (last.lambda_q, last.lambda_u) == starts[pattern]
        assert sum(s.duration for s in segments) <= total_time + 1e-9


class TestMetadataConsistency:
    @given(segments=segments_strategy, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_metadata_is_duration_weighted_mean(self, segments, seed):
        workload = generate_segmented_workload(GRAPH, segments, rng=seed)
        total = sum(s.duration for s in segments)
        expected_q = sum(s.lambda_q * s.duration for s in segments) / total
        expected_u = sum(s.lambda_u * s.duration for s in segments) / total
        assert workload.lambda_q == expected_q
        assert workload.lambda_u == expected_u
        # the empirical rates agree with the metadata within noise
        emp_q, emp_u = workload.empirical_rates()
        assert abs(emp_q * total - expected_q * total) <= tolerance(
            expected_q * total
        )
        assert abs(emp_u * total - expected_u * total) <= tolerance(
            expected_u * total
        )
