"""Tests for the Eq. 2 / Lemma 1 queueing formulas."""

import math

import pytest

from repro.queueing import (
    expected_response_time,
    is_stable,
    traffic_intensity,
    unstable_response_growth,
)
from repro.queueing.theory import (
    heavy_traffic_response_time,
    mm1_response_time,
)


class TestTrafficIntensity:
    def test_definition(self):
        assert traffic_intensity(2.0, 3.0, 0.1, 0.2) == pytest.approx(0.8)

    def test_stability_boundary(self):
        assert is_stable(1.0, 1.0, 0.4, 0.4)
        assert not is_stable(1.0, 1.0, 0.5, 0.5)  # rho == 1 is unstable
        assert not is_stable(1.0, 1.0, 0.6, 0.6)


class TestExpectedResponseTime:
    def test_reduces_to_mm1(self):
        """With only queries and CV=1, Eq. 2 equals the M/M/1 formula
        W = rho/(mu - lambda) + 1/mu."""
        lam, mu = 5.0, 10.0
        t_q = 1.0 / mu
        rho = lam * t_q
        expected_mm1 = rho / (mu - lam) + t_q
        got = expected_response_time(lam, 0.0, t_q, 0.0, cv_q=1.0)
        assert got == pytest.approx(expected_mm1)

    def test_infinite_when_unstable(self):
        assert expected_response_time(10.0, 10.0, 0.1, 0.1) == math.inf

    def test_increases_with_load(self):
        low = expected_response_time(1.0, 1.0, 0.1, 0.1)
        high = expected_response_time(4.0, 4.0, 0.1, 0.1)
        assert high > low

    def test_update_service_contributes_waiting_only(self):
        """Updates inflate waiting but not the final t_q term."""
        base = expected_response_time(1.0, 0.0, 0.1, 0.0)
        with_updates = expected_response_time(1.0, 1.0, 0.1, 0.1)
        assert with_updates > base

    def test_zero_load_equals_service_time(self):
        assert expected_response_time(0.0, 0.0, 0.25, 0.1) == pytest.approx(0.25)

    def test_cv_raises_waiting(self):
        smooth = expected_response_time(5.0, 0.0, 0.1, 0.0, cv_q=0.0)
        noisy = expected_response_time(5.0, 0.0, 0.1, 0.0, cv_q=2.0)
        assert noisy > smooth

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            expected_response_time(1.0, 1.0, -0.1, 0.1)


class TestUnstableGrowth:
    def test_lemma1_formula(self):
        # rho = 2.0, lambda_q = 4 -> growth (2 - 1)/4
        got = unstable_response_growth(4.0, 4.0, 0.25, 0.25)
        assert got == pytest.approx(1.0 / 4.0)

    def test_zero_growth_when_stable(self):
        assert unstable_response_growth(1.0, 1.0, 0.1, 0.1) == 0.0

    def test_requires_positive_lambda_q(self):
        with pytest.raises(ValueError):
            unstable_response_growth(0.0, 1.0, 0.1, 0.1)

    def test_growth_monotone_in_update_rate(self):
        slow = unstable_response_growth(2.0, 2.0, 0.3, 0.3)
        fast = unstable_response_growth(2.0, 8.0, 0.3, 0.3)
        assert fast > slow


class TestNegativeRateValidation:
    """Negative lambdas yield rho < 0 and negative waiting times the
    optimizer would chase; every formula must reject them."""

    def test_traffic_intensity_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            traffic_intensity(-1.0, 1.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            traffic_intensity(1.0, -1.0, 0.1, 0.1)

    def test_expected_response_time_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            expected_response_time(-1.0, 1.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            expected_response_time(1.0, -1.0, 0.1, 0.1)

    def test_mm1_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            mm1_response_time(-1.0, 1.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            mm1_response_time(1.0, -1.0, 0.1, 0.1)

    def test_heavy_traffic_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            heavy_traffic_response_time(-1.0, 1.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            heavy_traffic_response_time(1.0, -1.0, 0.1, 0.1)

    def test_unstable_growth_rejects_negative_lambda_u(self):
        with pytest.raises(ValueError):
            unstable_response_growth(1.0, -1.0, 0.1, 0.1)

    def test_zero_rates_still_accepted(self):
        assert traffic_intensity(0.0, 0.0, 0.1, 0.1) == 0.0
        assert expected_response_time(0.0, 0.0, 0.25, 0.1) == pytest.approx(
            0.25
        )
        assert mm1_response_time(0.0, 0.0, 0.25, 0.1) == pytest.approx(0.25)
        assert heavy_traffic_response_time(
            0.0, 0.0, 0.25, 0.1
        ) == pytest.approx(0.25)
