"""Regression tests for the Issue-3 simulator fixes and the
event-driven Seed-aware simulator.

Bug 3: ``FCFSQueueSimulator.run`` silently accepted NaN/inf service
durations, poisoning every downstream mean/percentile; it now raises
immediately, naming the offending request.

Bug 4: ``servers > 1`` with a *measured* service_fn mislabels a
sequential timeline as parallel; the simulator now requires an explicit
``modeled=True`` acknowledgement or emits ``MeasuredParallelWarning``.
"""

import math

import pytest

from repro.graph import DynamicGraph, EdgeUpdate
from repro.queueing import (
    FCFSQueueSimulator,
    MeasuredParallelWarning,
    Request,
    SeedAwareQueueSimulator,
)
from repro.queueing.simulator import validate_service
from repro.queueing.workload import QUERY, UPDATE


def queries(arrivals):
    return [Request(float(t), QUERY, source=0) for t in arrivals]


def make_graph():
    return DynamicGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])


class TestServiceValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_non_finite_and_negative(self, bad):
        sim = FCFSQueueSimulator(lambda r: bad)
        with pytest.raises(ValueError, match="service_fn"):
            sim.run(queries([0.0]), t_end=1.0)

    def test_error_names_the_request(self):
        sim = FCFSQueueSimulator(lambda r: float("nan"))
        request = Request(0.25, QUERY, source=7)
        with pytest.raises(ValueError, match="source=7"):
            sim.run([request], t_end=1.0)

    def test_validate_service_passthrough(self):
        request = Request(0.0, QUERY, source=0)
        assert validate_service(0.5, request) == 0.5
        assert validate_service(0.0, request) == 0.0

    def test_seed_simulator_validates_too(self):
        graph = make_graph()
        sim = SeedAwareQueueSimulator(lambda r: math.inf, graph)
        with pytest.raises(ValueError, match="service_fn"):
            sim.run(queries([0.0]))


class TestMeasuredParallelWarning:
    def test_multiserver_without_modeled_warns(self):
        sim = FCFSQueueSimulator(lambda r: 1.0, servers=2)
        with pytest.warns(MeasuredParallelWarning):
            sim.run(queries([0.0, 0.0]), t_end=5.0)

    def test_modeled_flag_silences(self, recwarn):
        sim = FCFSQueueSimulator(lambda r: 1.0, servers=2, modeled=True)
        sim.run(queries([0.0, 0.0]), t_end=5.0)
        assert not [
            w for w in recwarn if w.category is MeasuredParallelWarning
        ]

    def test_single_server_never_warns(self, recwarn):
        FCFSQueueSimulator(lambda r: 1.0).run(queries([0.0]), t_end=5.0)
        assert not [
            w for w in recwarn if w.category is MeasuredParallelWarning
        ]


class TestSeedAwareSimulator:
    def test_matches_fcfs_when_disabled(self):
        """eps_r=0, servers=1 must coincide with FCFSQueueSimulator."""
        arrivals = [0.0, 0.3, 0.31, 1.0, 1.5]
        requests = queries(arrivals) + [
            Request(0.5, UPDATE, update=EdgeUpdate(0, 9))
        ]
        requests.sort(key=lambda r: r.arrival)
        svc = lambda r: 0.2 if r.kind == QUERY else 0.05  # noqa: E731
        fcfs = FCFSQueueSimulator(svc).run(list(requests), t_end=10.0)
        seed = SeedAwareQueueSimulator(svc, make_graph()).run(
            list(requests), t_end=10.0
        )
        assert [
            (c.request.arrival, c.start, c.finish) for c in fcfs.completed
        ] == [
            (c.request.arrival, c.start, c.finish) for c in seed.completed
        ]

    def test_updates_deferred_within_budget(self):
        """While the server is busy, a later query overtakes an earlier
        update; the deferred update is drained once the server idles.

        The server stays occupied from 0.0 so the idle drain (which
        would otherwise apply the update during the gap — workers can't
        see future arrivals) never gets a chance before the query.
        """
        graph = make_graph()
        requests = [
            Request(0.0, QUERY, source=2),                 # busy till 1.0
            Request(0.1, UPDATE, update=EdgeUpdate(0, 9)),  # deferred
            Request(0.2, QUERY, source=2),                 # overtakes it
        ]
        svc = lambda r: 1.0 if r.kind == QUERY else 0.5  # noqa: E731
        result = SeedAwareQueueSimulator(
            svc, graph, epsilon_r=100.0
        ).run(requests)
        second_query = next(
            c for c in result.completed
            if c.request.kind == QUERY and c.request.arrival == 0.2
        )
        update = next(c for c in result.completed if c.request.kind == UPDATE)
        assert second_query.start == pytest.approx(1.0)   # not behind update
        assert update.start >= second_query.finish        # drained after
        assert graph.has_edge(0, 9)  # structure really mutated

    def test_forced_flush_charges_the_query(self):
        """A query whose bound exceeds eps_r pays for the flush first."""
        graph = make_graph()
        tiny = 1e-9  # any pending update overflows this budget
        requests = [
            Request(0.0, QUERY, source=2),                 # busy till 1.0
            Request(0.1, UPDATE, update=EdgeUpdate(0, 9)),  # deferred
            Request(0.2, QUERY, source=2),                 # must flush
        ]
        svc = lambda r: 1.0 if r.kind == QUERY else 0.5  # noqa: E731
        result = SeedAwareQueueSimulator(
            svc, graph, epsilon_r=tiny
        ).run(requests)
        second_query = next(
            c for c in result.completed
            if c.request.kind == QUERY and c.request.arrival == 0.2
        )
        update = next(c for c in result.completed if c.request.kind == UPDATE)
        assert update.start == pytest.approx(1.0)          # flush first...
        assert second_query.start == pytest.approx(1.5)    # ...then query

    def test_idle_server_drains_pending(self):
        """A long gap before the next arrival applies deferred updates
        at the server's idle time, not at the next query."""
        graph = make_graph()
        requests = [
            Request(0.0, UPDATE, update=EdgeUpdate(0, 9)),
            Request(5.0, QUERY, source=2),
        ]
        svc = lambda r: 1.0 if r.kind == QUERY else 0.5  # noqa: E731
        result = SeedAwareQueueSimulator(
            svc, graph, epsilon_r=100.0
        ).run(requests)
        update = next(c for c in result.completed if c.request.kind == UPDATE)
        query = next(c for c in result.completed if c.request.kind == QUERY)
        assert update.finish <= 5.0  # drained during the idle gap
        assert query.start == pytest.approx(5.0)  # graph already fresh

    def test_tail_flush_after_window(self):
        """Updates still pending when the workload ends are applied."""
        graph = make_graph()
        requests = [Request(0.0, UPDATE, update=EdgeUpdate(0, 9))]
        result = SeedAwareQueueSimulator(
            lambda r: 0.5, graph, epsilon_r=100.0
        ).run(requests)
        assert graph.has_edge(0, 9)
        assert len(result.completed) == 1

    def test_multiserver_overlap(self):
        """k=2 serves two simultaneous queries without queueing."""
        result = SeedAwareQueueSimulator(
            lambda r: 1.0, make_graph(), servers=2
        ).run(queries([0.0, 0.0, 0.0]), t_end=10.0)
        starts = sorted(c.start for c in result.completed)
        assert starts == [0.0, 0.0, 1.0]

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            SeedAwareQueueSimulator(lambda r: 1.0, make_graph(), servers=0)
