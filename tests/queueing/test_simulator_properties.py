"""Deeper queueing-theory properties of the virtual-time simulator.

Beyond the Lindley invariants: work conservation, Little's law, PASTA-
style consistency — the classic identities any correct FCFS simulation
must satisfy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    FCFSQueueSimulator,
    PoissonArrivals,
    Request,
    Workload,
)
from repro.queueing.workload import QUERY


def poisson_workload(lam, t_end, seed, service_seed=None):
    rng = np.random.default_rng(seed)
    times = PoissonArrivals(lam).generate(t_end, rng)
    requests = [Request(float(t), QUERY, source=0) for t in times]
    return Workload(requests, t_end, lam, 0.0)


class TestLittlesLaw:
    """L = lambda * W: mean number in system equals arrival rate times
    mean response time (computed from the completion records)."""

    @pytest.mark.parametrize("lam,service", [(4.0, 0.1), (8.0, 0.1)])
    def test_littles_law_holds(self, lam, service):
        t_end = 2000.0
        workload = poisson_workload(lam, t_end, seed=1)
        sim = FCFSQueueSimulator(lambda r: service)
        result = sim.run(workload)
        # time-average number in system via the completion intervals
        horizon = max(c.finish for c in result.completed)
        total_sojourn = sum(c.response_time for c in result.completed)
        l_avg = total_sojourn / horizon
        lam_effective = len(result.completed) / horizon
        w_avg = result.mean_query_response_time()
        assert l_avg == pytest.approx(lam_effective * w_avg, rel=0.02)


class TestWorkConservation:
    def test_busy_time_equals_total_service(self):
        workload = poisson_workload(5.0, 100.0, seed=2)
        rng = np.random.default_rng(3)
        services = {}

        def service_fn(request):
            services[id(request)] = float(rng.uniform(0.01, 0.2))
            return services[id(request)]

        result = FCFSQueueSimulator(service_fn).run(workload)
        assert result.total_busy_time() == pytest.approx(
            sum(services.values())
        )

    def test_no_server_idling_while_work_waits(self):
        """If a request waited, the server was busy the whole wait."""
        workload = poisson_workload(20.0, 50.0, seed=4)
        result = FCFSQueueSimulator(lambda r: 0.08).run(workload)
        completions = result.completed
        for prev, cur in zip(completions, completions[1:]):
            if cur.waiting_time > 1e-12:
                # waiting implies back-to-back service
                assert cur.start == pytest.approx(prev.finish)


class TestScalingLaws:
    def test_response_time_scales_with_service_time(self):
        """Scaling all service times by c scales response times by c
        when arrivals are scaled oppositely (time-unit invariance)."""
        lam = 5.0
        t_end = 500.0
        base_workload = poisson_workload(lam, t_end, seed=5)
        base = FCFSQueueSimulator(lambda r: 0.1).run(base_workload)

        scaled_requests = [
            Request(r.arrival * 2.0, r.kind, source=r.source)
            for r in base_workload
        ]
        scaled = FCFSQueueSimulator(lambda r: 0.2).run(
            Workload(scaled_requests, t_end * 2.0, lam / 2.0, 0.0)
        )
        assert scaled.mean_query_response_time() == pytest.approx(
            2.0 * base.mean_query_response_time(), rel=1e-9
        )

    def test_utilization_approaches_offered_load(self):
        lam, service = 6.0, 0.1  # rho = 0.6
        workload = poisson_workload(lam, 2000.0, seed=6)
        result = FCFSQueueSimulator(lambda r: service).run(workload)
        assert result.utilization() == pytest.approx(0.6, rel=0.05)


@settings(max_examples=30, deadline=None)
@given(
    lam=st.floats(0.5, 20.0),
    service=st.floats(0.001, 0.04),
    seed=st.integers(0, 100),
)
def test_response_time_at_least_service(lam, service, seed):
    workload = poisson_workload(lam, 20.0, seed=seed)
    result = FCFSQueueSimulator(lambda r: service).run(workload)
    for completed in result.completed:
        assert completed.response_time >= service - 1e-12
