"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` on modern pip requires bdist_wheel; this offline
environment lacks the wheel module, so the shim lets
`python setup.py develop` (and legacy editable installs) work.
"""

from setuptools import setup

setup()
